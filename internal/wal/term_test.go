package wal

import (
	"errors"
	"path/filepath"
	"testing"
)

func TestAdoptTermAndFence(t *testing.T) {
	l := NewMemory()
	if ts := l.TermState(); ts.Term != 0 || ts.Fenced {
		t.Fatalf("fresh log term state = %+v", ts)
	}
	if _, err := l.Append(Kind(7), []byte("a")); err != nil {
		t.Fatal(err)
	}
	lsn, err := l.AdoptTerm(1, "m1")
	if err != nil {
		t.Fatalf("adopt term 1: %v", err)
	}
	if lsn != 2 {
		t.Fatalf("term start lsn = %d, want 2", lsn)
	}
	if ts := l.TermState(); ts.Term != 1 || ts.Start != 2 || ts.Leader != "m1" || ts.Fenced {
		t.Fatalf("term state = %+v", ts)
	}
	// Claiming at or below a known term is rejected.
	if _, err := l.AdoptTerm(1, "m2"); !errors.Is(err, ErrFenced) {
		t.Fatalf("re-adopt term 1 = %v, want ErrFenced", err)
	}
	// Stale evidence must not fence a legitimate leader.
	if l.Fence(1) {
		t.Fatal("Fence(1) raised a fence at the current term")
	}
	if _, err := l.Append(Kind(7), []byte("b")); err != nil {
		t.Fatalf("append while unfenced: %v", err)
	}
	// A higher term fences the append path.
	if !l.Fence(3) {
		t.Fatal("Fence(3) did not raise the fence")
	}
	if _, err := l.Append(Kind(7), []byte("c")); !errors.Is(err, ErrFenced) {
		t.Fatalf("fenced append = %v, want ErrFenced", err)
	}
	if l.KnownTerm() != 3 {
		t.Fatalf("KnownTerm = %d, want 3 (fence term)", l.KnownTerm())
	}
	// Claiming a term at or below the fence term is rejected too — in
	// particular the fence term itself: the fence is evidence that term 3
	// is already owned, and adopting it here would put two leaders in one
	// fencing epoch.
	if _, err := l.AdoptTerm(2, "m1"); !errors.Is(err, ErrFenced) {
		t.Fatalf("adopt term 2 under fence 3 = %v, want ErrFenced", err)
	}
	if _, err := l.AdoptTerm(3, "m1"); !errors.Is(err, ErrFenced) {
		t.Fatalf("adopt the fence term itself = %v, want ErrFenced", err)
	}
	// Winning a later election clears the fence.
	if _, err := l.AdoptTerm(4, "m1"); err != nil {
		t.Fatalf("adopt term 4: %v", err)
	}
	if ts := l.TermState(); ts.Term != 4 || ts.Fenced || ts.FencedAt != 0 {
		t.Fatalf("term state after re-election = %+v", ts)
	}
	if _, err := l.Append(Kind(7), []byte("d")); err != nil {
		t.Fatalf("append after re-election: %v", err)
	}
}

func TestStreamedTermRecordAdoptsAndUnfences(t *testing.T) {
	primary := NewMemory()
	if _, err := primary.Append(Kind(7), []byte("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := primary.AdoptTerm(2, "m2"); err != nil {
		t.Fatal(err)
	}
	if _, err := primary.Append(Kind(7), []byte("b")); err != nil {
		t.Fatal(err)
	}

	follower := NewMemory()
	follower.Fence(2) // the claim arrived before the stream
	recs, err := primary.RecordsSince(0)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := follower.AppendRecord(r); err != nil {
			t.Fatalf("apply %d: %v", r.LSN, err)
		}
	}
	ts := follower.TermState()
	if ts.Term != 2 || ts.Start != 2 || ts.Leader != "m2" {
		t.Fatalf("follower term state = %+v", ts)
	}
	if ts.Fenced {
		t.Fatal("follower still fenced after streaming the term record")
	}
	if _, err := follower.Append(Kind(7), []byte("local")); err != nil {
		t.Fatalf("append after stream unfence: %v", err)
	}
}

func TestTruncateAfterCutsSuffixKeepsFence(t *testing.T) {
	l := NewMemory()
	for i := 0; i < 5; i++ {
		if _, err := l.Append(Kind(7), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	l.Fence(9)
	if err := l.TruncateAfter(2); err != nil {
		t.Fatal(err)
	}
	recs, err := l.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[1].LSN != 2 {
		t.Fatalf("records after truncate = %v", recs)
	}
	if l.LastLSN() != 2 {
		t.Fatalf("LastLSN = %d, want 2", l.LastLSN())
	}
	if !l.Fenced() {
		t.Fatal("truncation lowered the fence")
	}
	// The freed LSNs are reusable by the replication stream.
	if err := l.AppendRecord(Record{LSN: 3, Kind: KindTerm, Data: EncodeTermRecord(9, "m2")}); err != nil {
		t.Fatalf("stream into truncated log: %v", err)
	}
	if l.Fenced() {
		t.Fatal("still fenced after the fence term's record streamed in")
	}
	if ts := l.TermState(); ts.Term != 9 || ts.Start != 3 {
		t.Fatalf("term state = %+v", ts)
	}
}

func TestTruncateAfterRecomputesTermState(t *testing.T) {
	l := NewMemory()
	if _, err := l.AdoptTerm(1, "m1"); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(Kind(7), []byte("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := l.AdoptTerm(2, "m2"); err != nil {
		t.Fatal(err)
	}
	// Cutting the term-2 record falls back to term 1.
	if err := l.TruncateAfter(2); err != nil {
		t.Fatal(err)
	}
	if ts := l.TermState(); ts.Term != 1 || ts.Start != 1 || ts.Leader != "m1" {
		t.Fatalf("term state after cutting term 2 = %+v", ts)
	}
}

func TestCheckpointRetainsLatestTermRecord(t *testing.T) {
	l := NewMemory()
	if _, err := l.AdoptTerm(1, "m1"); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(Kind(7), []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := l.AdoptTerm(2, "m2"); err != nil {
		t.Fatal(err)
	}
	// A keep function that drops everything still leaves the latest term
	// record (and only that one).
	if err := l.Checkpoint(func(Record) bool { return false }); err != nil {
		t.Fatal(err)
	}
	recs, err := l.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Kind != KindTerm || recs[0].LSN != 3 {
		t.Fatalf("records after checkpoint = %v", recs)
	}
	// A restart over the compacted log still sees term 2.
	snap, err := l.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	reopened, err := OpenMemory(snap)
	if err != nil {
		t.Fatal(err)
	}
	if ts := reopened.TermState(); ts.Term != 2 || ts.Start != 3 || ts.Leader != "m2" {
		t.Fatalf("reopened term state = %+v", ts)
	}
}

// TestTermStartAfterTracksEveryMutation pins the rejoin truncation bound
// across every path that changes the term-record set: local adoption,
// streamed term records, compaction and reopen. TermStartAfter answers
// from an in-memory cache (fenceFetch calls it per fetch round), so each
// mutation must keep the cache faithful to the durable records.
func TestTermStartAfterTracksEveryMutation(t *testing.T) {
	l := NewMemory()
	if _, ok := l.TermStartAfter(0); ok {
		t.Fatal("empty log reported a term start")
	}
	if _, err := l.AdoptTerm(1, "m1"); err != nil { // LSN 1
		t.Fatal(err)
	}
	if _, err := l.Append(Kind(7), []byte("a")); err != nil { // LSN 2
		t.Fatal(err)
	}
	if _, err := l.AdoptTerm(2, "m2"); err != nil { // LSN 3
		t.Fatal(err)
	}
	// A streamed term record (the follower apply path) extends the cache.
	if err := l.AppendRecord(Record{LSN: 4, Kind: KindTerm, Data: EncodeTermRecord(3, "m3")}); err != nil {
		t.Fatal(err)
	}
	for term, want := range map[uint64]uint64{0: 1, 1: 3, 2: 4} {
		if got, ok := l.TermStartAfter(term); !ok || got != want {
			t.Fatalf("TermStartAfter(%d) = %d,%v, want %d,true", term, got, ok, want)
		}
	}
	if _, ok := l.TermStartAfter(3); ok {
		t.Fatal("TermStartAfter beyond the newest term reported a start")
	}

	// Compaction drops the older term records; the bound for old terms
	// moves up to the earliest surviving one.
	if err := l.Checkpoint(func(Record) bool { return false }); err != nil {
		t.Fatal(err)
	}
	if got, ok := l.TermStartAfter(0); !ok || got != 4 {
		t.Fatalf("TermStartAfter(0) after checkpoint = %d,%v, want 4,true", got, ok)
	}

	// A restart over the compacted log rebuilds the cache from the scan.
	snap, err := l.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	reopened, err := OpenMemory(snap)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := reopened.TermStartAfter(2); !ok || got != 4 {
		t.Fatalf("reopened TermStartAfter(2) = %d,%v, want 4,true", got, ok)
	}
	// Truncation cuts the term-3 record; the bound disappears with it.
	if err := reopened.TruncateAfter(3); err != nil {
		t.Fatal(err)
	}
	if _, ok := reopened.TermStartAfter(2); ok {
		t.Fatal("truncated term record still reported by TermStartAfter")
	}
}

func TestTermSurvivesFileReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "term.wal")
	l, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.AdoptTerm(5, "member-b"); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(Kind(7), []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	reopened, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	ts := reopened.TermState()
	if ts.Term != 5 || ts.Start != 1 || ts.Leader != "member-b" {
		t.Fatalf("reopened term state = %+v", ts)
	}
	if ts.Fenced {
		t.Fatal("fence survived restart; it is in-memory evidence only")
	}
}

// TestFencedTruncationTornTailAcrossReopen is the fenced-rejoin crash
// matrix: a deposed leader truncates its unreplicated suffix, tears an
// append (the crash-injected stream apply), and the reopen repairs the
// torn tail without resurrecting the truncated suffix.
func TestFencedTruncationTornTailAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rejoin.wal")
	l, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := l.Append(Kind(7), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Deposed: fence, cut the unreplicated suffix (records 4..6).
	l.Fence(3)
	if err := l.TruncateAfter(3); err != nil {
		t.Fatal(err)
	}
	// The rejoin stream starts; its first apply tears mid-record.
	l.InjectCrashAfter(0)
	err = l.AppendRecord(Record{LSN: 4, Kind: KindTerm, Data: EncodeTermRecord(3, "m2")})
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("crash-injected apply = %v, want ErrCrashed", err)
	}
	l.Close()

	reopened, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	recs, err := reopened.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("reopened log holds %d records, want the 3 below the cut", len(recs))
	}
	for i, r := range recs {
		if r.LSN != uint64(i+1) || len(r.Data) != 1 || r.Data[0] != byte(i) {
			t.Fatalf("record %d = %+v", i, r)
		}
	}
	// The repaired log streams cleanly from where the cut left it.
	if err := reopened.AppendRecord(Record{LSN: 4, Kind: KindTerm, Data: EncodeTermRecord(3, "m2")}); err != nil {
		t.Fatalf("stream after repair: %v", err)
	}
	if ts := reopened.TermState(); ts.Term != 3 || ts.Start != 4 {
		t.Fatalf("term state after rejoin stream = %+v", ts)
	}
}

// BenchmarkAppend is the unfenced append baseline BenchmarkFencedAppend
// is gated against (CI pins fenced ≤ baseline + 1 alloc/op).
func BenchmarkAppend(b *testing.B) {
	l := NewMemory()
	data := []byte("decision-record-payload-0123456789")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Append(Kind(7), data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFencedAppend measures the append fast path with term state
// present: the fence check is one branch under the lock, so the path must
// cost no more than one allocation over the plain append.
func BenchmarkFencedAppend(b *testing.B) {
	l := NewMemory()
	if _, err := l.AdoptTerm(1, "bench-member"); err != nil {
		b.Fatal(err)
	}
	data := []byte("decision-record-payload-0123456789")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Append(Kind(7), data); err != nil {
			b.Fatal(err)
		}
	}
}
