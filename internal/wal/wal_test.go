package wal

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"
)

func TestAppendAndReplayMemory(t *testing.T) {
	l := NewMemory()
	for i := 0; i < 10; i++ {
		lsn, err := l.Append(Kind(i%3), []byte(fmt.Sprintf("rec-%d", i)))
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if lsn != uint64(i+1) {
			t.Fatalf("lsn = %d, want %d", lsn, i+1)
		}
	}
	var got []string
	if err := l.Replay(func(r Record) error {
		got = append(got, string(r.Data))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 || got[0] != "rec-0" || got[9] != "rec-9" {
		t.Fatalf("replay = %v", got)
	}
}

func TestFileLogSurvivesReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "test.wal")
	l, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(1, []byte("alpha")); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(2, []byte("beta")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	recs, err := l2.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || string(recs[1].Data) != "beta" {
		t.Fatalf("records = %+v", recs)
	}
	// LSNs continue after reopen.
	lsn, err := l2.Append(3, []byte("gamma"))
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 3 {
		t.Fatalf("lsn after reopen = %d, want 3", lsn)
	}
}

func TestTornTailTruncatedOnReopen(t *testing.T) {
	l := NewMemory()
	for i := 0; i < 5; i++ {
		if _, err := l.Append(1, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := l.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	// Cut the snapshot at every byte boundary: replay must always produce a
	// prefix of the committed records.
	for cut := 0; cut <= len(snap); cut++ {
		l2, err := OpenMemory(snap[:cut])
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		recs, err := l2.Records()
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		for j, r := range recs {
			if r.LSN != uint64(j+1) || int(r.Data[0]) != j {
				t.Fatalf("cut %d: record %d = %+v, not a clean prefix", cut, j, r)
			}
		}
		// After reopening a torn log, appends must work again.
		if _, err := l2.Append(9, []byte("new")); err != nil {
			t.Fatalf("cut %d: append after reopen: %v", cut, err)
		}
	}
}

func TestCorruptTailDropped(t *testing.T) {
	l := NewMemory()
	if _, err := l.Append(1, []byte("good")); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(1, []byte("evil")); err != nil {
		t.Fatal(err)
	}
	snap, _ := l.Snapshot()
	snap[len(snap)-1] ^= 0xFF // flip a bit in the last record's payload
	l2, err := OpenMemory(snap)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := l2.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || string(recs[0].Data) != "good" {
		t.Fatalf("records = %+v, want only the intact one", recs)
	}
}

func TestCrashInjection(t *testing.T) {
	l := NewMemory()
	if !l.InjectCrashAfter(2) {
		t.Fatal("injection unsupported on memory backend")
	}
	if _, err := l.Append(1, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(1, []byte("b")); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(1, []byte("c")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("err = %v, want ErrCrashed", err)
	}
	// Simulated restart: the torn third record must vanish.
	snap, _ := l.Snapshot()
	l2, err := OpenMemory(snap)
	if err != nil {
		t.Fatal(err)
	}
	recs, _ := l2.Records()
	if len(recs) != 2 {
		t.Fatalf("got %d records after crash, want 2", len(recs))
	}
}

func TestCheckpointKeepsSelected(t *testing.T) {
	l := NewMemory()
	for i := 0; i < 6; i++ {
		if _, err := l.Append(Kind(i%2), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Checkpoint(func(r Record) bool { return r.Kind == 1 }); err != nil {
		t.Fatal(err)
	}
	recs, err := l.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}
	for _, r := range recs {
		if r.Kind != 1 {
			t.Fatalf("kept record with kind %d", r.Kind)
		}
	}
	// Appends after checkpoint continue the LSN sequence.
	lsn, err := l.Append(7, nil)
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 7 {
		t.Fatalf("lsn after checkpoint = %d, want 7", lsn)
	}
}

func TestClosedLogRejectsUse(t *testing.T) {
	l := NewMemory()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(1, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("append err = %v", err)
	}
	if _, err := l.Records(); !errors.Is(err, ErrClosed) {
		t.Fatalf("records err = %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("double close err = %v", err)
	}
}

func TestConcurrentAppends(t *testing.T) {
	l := NewMemory()
	var wg sync.WaitGroup
	const (
		workers = 8
		each    = 200
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if _, err := l.Append(1, []byte("x")); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	recs, err := l.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != workers*each {
		t.Fatalf("got %d records, want %d", len(recs), workers*each)
	}
	for i, r := range recs {
		if r.LSN != uint64(i+1) {
			t.Fatalf("record %d has LSN %d", i, r.LSN)
		}
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(payloads [][]byte) bool {
		l := NewMemory()
		for _, p := range payloads {
			if _, err := l.Append(3, p); err != nil {
				return false
			}
		}
		recs, err := l.Records()
		if err != nil || len(recs) != len(payloads) {
			return false
		}
		for i, r := range recs {
			if !bytes.Equal(r.Data, payloads[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyDataRecord(t *testing.T) {
	l := NewMemory()
	if _, err := l.Append(5, nil); err != nil {
		t.Fatal(err)
	}
	recs, _ := l.Records()
	if len(recs) != 1 || recs[0].Kind != 5 || len(recs[0].Data) != 0 {
		t.Fatalf("records = %+v", recs)
	}
}
