// Package wal implements the logging service of the paper's fig. 3: a
// checksummed append-only record log with replay.
//
// The transaction service writes its prepare and commit/rollback decision
// records here (presumed abort needs only the commit decision to be
// durable), and the activity service journals activity structure events so
// that the activity tree can be rebuilt after a crash (§3.4 of the paper).
//
// The on-disk format is a sequence of records:
//
//	u32 payload length | u32 CRC-32 (IEEE) of payload | payload
//	payload = u64 LSN | u16 kind | data bytes
//
// Replay stops at the first torn or corrupt record, which models a crash
// mid-write; everything before it is durable. Both a file-backed and an
// in-memory backend are provided, and both support deterministic crash
// injection for recovery tests (InjectCrashAfter).
//
// Crash-atomicity guarantees:
//
//   - Append is atomic: a record is either durable in full or invisible to
//     replay. A torn tail left by a crashed or failed append is repaired
//     (truncated and synced) before the next append, so later records are
//     never written behind garbage where replay cannot see them.
//   - Checkpoint is atomic: the compacted log is written to a temporary
//     file, synced, and renamed over the old log (the in-memory backend
//     swaps its buffer in one step). A crash at any point during a
//     checkpoint leaves either the complete old log or the complete new
//     one — never an empty or partially rewritten log.
//   - Open makes the repaired log durable before use: a truncated torn
//     tail is synced, and a newly created log file is made durable with a
//     parent-directory fsync, so a crash immediately after open cannot
//     resurrect the tail or lose the file.
//
// For replication, the log exposes its stream position (State, LastLSN),
// incremental reads (RecordsSince, WaitSince) and a follower write surface
// (AppendRecord, InstallSnapshot) — see the replication layer in
// internal/remote for the wire protocol built on them.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// Kind identifies the type of a log record. Kinds are assigned by the
// client packages (OTS, activity service); the log does not interpret them.
type Kind uint16

// Record is one durable log entry.
type Record struct {
	LSN  uint64
	Kind Kind
	Data []byte
}

// Log errors.
var (
	// ErrClosed reports use of a closed log.
	ErrClosed = errors.New("wal: log is closed")
	// ErrCrashed reports that crash injection stopped an append.
	ErrCrashed = errors.New("wal: simulated crash")
	// ErrStaleRecord reports a follower append whose LSN is not beyond the
	// log's current position (a duplicate or out-of-order shipment).
	ErrStaleRecord = errors.New("wal: stale record")
)

const headerSize = 8 // u32 length + u32 crc

// backend abstracts the durable medium.
type backend interface {
	// append writes b at the end of the medium.
	append(b []byte) error
	// sync forces previously written bytes to durable storage.
	sync() error
	// contents reads the whole medium.
	contents() ([]byte, error)
	// truncate discards everything beyond offset n.
	truncate(n int) error
	// replace atomically substitutes the entire contents with b: after a
	// crash at any point the medium holds either the old contents or b.
	replace(b []byte) error
	// close releases the medium.
	close() error
}

// Log is an append-only record log. Safe for concurrent use.
type Log struct {
	mu      sync.Mutex
	be      backend
	nextLSN uint64
	size    int  // byte offset of the end of the last valid record
	dirty   bool // a failed append may have left torn bytes past size
	epoch   uint64
	waitCh  chan struct{} // closed and renewed whenever the stream advances
	closed  bool

	// Coordinator-group term state (see term.go). term/termStart/termLeader
	// mirror the latest durable KindTerm record; termMarks caches every
	// durable term record's position so TermStartAfter answers without
	// rescanning the backend; fenced/fencedTerm are the in-memory fence
	// raised when a higher term is learned of before its record arrives
	// through the stream.
	term       uint64
	termStart  uint64
	termLeader string
	termMarks  []termMark
	fenced     bool
	fencedTerm uint64

	// Crash injection (tests): when armed, the append path tears after
	// failAfter more successful appends. Backend-agnostic so the same
	// fault matrix runs against memory and real files.
	failAfter int
	failArmed bool
}

// NewMemory returns an empty in-memory log.
func NewMemory() *Log {
	l, err := newLog(&memBackend{})
	if err != nil {
		// An empty memory backend cannot fail to replay.
		panic(fmt.Sprintf("wal: NewMemory: %v", err))
	}
	return l
}

// OpenMemory returns an in-memory log initialised from a previous log's
// Snapshot, simulating a process restart over the same durable state.
func OpenMemory(data []byte) (*Log, error) {
	buf := make([]byte, len(data))
	copy(buf, data)
	return newLog(&memBackend{buf: buf})
}

// OpenFile opens (creating if needed) a file-backed log and replays it to
// establish the next LSN. A torn tail from a previous crash is truncated
// and the truncation synced; the parent directory is fsynced so a freshly
// created log file survives a crash immediately after open.
func OpenFile(path string) (*Log, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open %s: %w", path, err)
	}
	l, err := newLog(&fileBackend{f: f, path: path})
	if err != nil {
		f.Close()
		return nil, err
	}
	// Make the file's existence durable: without the directory fsync a
	// crash right after creating the log can lose the file itself, and
	// with it every record appended before the next directory flush.
	if err := syncDir(filepath.Dir(path)); err != nil {
		l.Close()
		return nil, fmt.Errorf("wal: sync dir for %s: %w", path, err)
	}
	return l, nil
}

// syncDir fsyncs a directory so that entries created or renamed inside it
// are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

func newLog(be backend) (*Log, error) {
	l := &Log{be: be, nextLSN: 1, waitCh: make(chan struct{})}
	recs, valid, total, err := l.scan()
	if err != nil {
		return nil, err
	}
	l.adoptScannedLocked(recs)
	l.size = valid
	// Drop a torn tail so subsequent appends produce a clean log, and make
	// the repair durable: an unsynced truncation can be undone by a crash,
	// resurrecting the torn bytes in front of records appended after it.
	if total > valid {
		if err := l.be.truncate(valid); err != nil {
			return nil, fmt.Errorf("wal: truncate torn tail: %w", err)
		}
		if err := l.be.sync(); err != nil {
			return nil, fmt.Errorf("wal: sync torn-tail repair: %w", err)
		}
	}
	return l, nil
}

// Append durably adds a record and returns its LSN. The record is written
// and synced before Append returns. If a previous append failed part-way,
// its torn bytes are truncated (and the truncation synced) first, so a
// successful Append is always visible to replay.
func (l *Log) Append(kind Kind, data []byte) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if l.fenced {
		return 0, fmt.Errorf("%w: term %d", ErrFenced, l.fencedTerm)
	}
	lsn := l.nextLSN
	if err := l.appendLocked(Record{LSN: lsn, Kind: kind, Data: data}); err != nil {
		return 0, err
	}
	l.nextLSN++
	l.notifyLocked()
	return lsn, nil
}

// appendLocked repairs any torn tail, then writes and syncs one record.
// On failure the log is marked dirty so the next append repairs the tail
// before writing. The caller must hold l.mu.
func (l *Log) appendLocked(r Record) error {
	if err := l.repairLocked(); err != nil {
		return err
	}
	rec := encodeRecord(r)
	if l.failArmed {
		if l.failAfter <= 0 {
			// Simulate a torn write: half the record reaches the medium.
			_ = l.be.append(rec[:len(rec)/2])
			l.dirty = true
			return ErrCrashed
		}
		l.failAfter--
	}
	if err := l.be.append(rec); err != nil {
		l.dirty = true
		return fmt.Errorf("wal: append: %w", err)
	}
	if err := l.be.sync(); err != nil {
		// The bytes may or may not have reached the medium; treat them as
		// torn so the next append truncates back to the last known-durable
		// offset instead of writing behind an uncertain tail.
		l.dirty = true
		return fmt.Errorf("wal: sync: %w", err)
	}
	l.size += len(rec)
	return nil
}

// repairLocked truncates torn bytes left by a failed append back to the
// end of the last valid record and syncs the truncation. The caller must
// hold l.mu.
func (l *Log) repairLocked() error {
	if !l.dirty {
		return nil
	}
	if err := l.be.truncate(l.size); err != nil {
		return fmt.Errorf("wal: repair truncate: %w", err)
	}
	if err := l.be.sync(); err != nil {
		return fmt.Errorf("wal: repair sync: %w", err)
	}
	l.dirty = false
	return nil
}

// notifyLocked wakes WaitSince waiters after the stream advanced. The
// caller must hold l.mu.
func (l *Log) notifyLocked() {
	close(l.waitCh)
	l.waitCh = make(chan struct{})
}

// Records returns a copy of all durable records in LSN order.
func (l *Log) Records() ([]Record, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil, ErrClosed
	}
	recs, _, _, err := l.scan()
	return recs, err
}

// Replay calls fn for every durable record in order, stopping at the first
// error from fn.
func (l *Log) Replay(fn func(Record) error) error {
	recs, err := l.Records()
	if err != nil {
		return err
	}
	for _, r := range recs {
		if err := fn(r); err != nil {
			return err
		}
	}
	return nil
}

// Checkpoint rewrites the log keeping only records for which keep returns
// true. LSNs of kept records are preserved, and the log's epoch advances
// so replication followers know to resynchronise from a snapshot.
//
// The rewrite is crash-atomic: the kept records are written to a temporary
// file, synced, and renamed over the log (the in-memory backend swaps its
// buffer in one step), so a crash mid-checkpoint leaves either the
// complete old log or the complete compacted one — never a truncated or
// partially rewritten log.
func (l *Log) Checkpoint(keep func(Record) bool) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	recs, _, _, err := l.scan()
	if err != nil {
		return err
	}
	// The latest term record is retained regardless of keep: the group's
	// fencing epoch must stay durable across every compaction, and client
	// packages sharing the log do not know about it.
	lastTerm := -1
	for i, r := range recs {
		if r.Kind == KindTerm {
			lastTerm = i
		}
	}
	var (
		out   []byte
		marks []termMark
	)
	for i, r := range recs {
		if i == lastTerm || keep(r) {
			out = append(out, encodeRecord(r)...)
			if r.Kind == KindTerm {
				if term, _, err := DecodeTermRecord(r.Data); err == nil {
					marks = append(marks, termMark{term: term, lsn: r.LSN})
				}
			}
		}
	}
	if l.failArmed && l.failAfter <= 0 {
		// Simulated crash during the rewrite: the swap never became
		// durable, so the old contents must remain intact.
		return ErrCrashed
	}
	if err := l.be.replace(out); err != nil {
		return fmt.Errorf("wal: checkpoint: %w", err)
	}
	l.size = len(out)
	l.dirty = false
	l.termMarks = marks
	l.epoch++
	l.notifyLocked()
	return nil
}

// Snapshot returns a copy of the durable record bytes (torn tails from a
// failed append are excluded), for simulated restarts and for shipping the
// log's full state to a replication follower (InstallSnapshot).
func (l *Log) Snapshot() ([]byte, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil, ErrClosed
	}
	b, err := l.be.contents()
	if err != nil {
		return nil, err
	}
	if l.size < len(b) {
		b = b[:l.size]
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out, nil
}

// Close releases the backend. Further use returns ErrClosed.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	l.notifyLocked()
	return l.be.close()
}

// InjectCrashAfter arranges for the log to fail all appends (and
// checkpoints) after n more successful appends, simulating a crash: the
// failing append tears half a record onto the medium, and a failing
// checkpoint stops before its atomic swap. Supported by every backend; a
// negative n disarms injection. It reports whether injection is supported.
func (l *Log) InjectCrashAfter(n int) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if n < 0 {
		l.failArmed = false
		return true
	}
	l.failAfter = n
	l.failArmed = true
	return true
}

// scan parses the backend contents, returning the valid records, the byte
// offset of the end of the last valid record, and the total content size.
func (l *Log) scan() ([]Record, int, int, error) {
	b, err := l.be.contents()
	if err != nil {
		return nil, 0, 0, fmt.Errorf("wal: read: %w", err)
	}
	var (
		recs  []Record
		off   int
		valid int
	)
	for {
		if off+headerSize > len(b) {
			break // torn or clean end
		}
		length := binary.BigEndian.Uint32(b[off : off+4])
		sum := binary.BigEndian.Uint32(b[off+4 : off+8])
		if length < 10 || off+headerSize+int(length) > len(b) {
			break // torn tail
		}
		payload := b[off+headerSize : off+headerSize+int(length)]
		if crc32.ChecksumIEEE(payload) != sum {
			break // corrupt tail
		}
		data := make([]byte, len(payload)-10)
		copy(data, payload[10:])
		recs = append(recs, Record{
			LSN:  binary.BigEndian.Uint64(payload[0:8]),
			Kind: Kind(binary.BigEndian.Uint16(payload[8:10])),
			Data: data,
		})
		off += headerSize + int(length)
		valid = off
	}
	return recs, valid, len(b), nil
}

func encodeRecord(r Record) []byte {
	payload := make([]byte, 10+len(r.Data))
	binary.BigEndian.PutUint64(payload[0:8], r.LSN)
	binary.BigEndian.PutUint16(payload[8:10], uint16(r.Kind))
	copy(payload[10:], r.Data)
	out := make([]byte, headerSize+len(payload))
	binary.BigEndian.PutUint32(out[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(out[4:8], crc32.ChecksumIEEE(payload))
	copy(out[headerSize:], payload)
	return out
}

// memBackend keeps the log in memory.
type memBackend struct {
	buf []byte
}

func (m *memBackend) append(b []byte) error {
	m.buf = append(m.buf, b...)
	return nil
}

func (m *memBackend) sync() error               { return nil }
func (m *memBackend) contents() ([]byte, error) { return m.buf, nil }

func (m *memBackend) truncate(n int) error {
	if n < len(m.buf) {
		m.buf = m.buf[:n]
	}
	return nil
}

func (m *memBackend) replace(b []byte) error {
	m.buf = append(m.buf[:0:0], b...)
	return nil
}

func (m *memBackend) close() error { return nil }

// fileBackend appends to a real file with fsync on sync. replace goes
// through a temp-file + fsync + rename + directory-fsync sequence so the
// swap is atomic across a crash at any point.
type fileBackend struct {
	f    *os.File
	path string
}

func (fb *fileBackend) append(b []byte) error {
	_, err := fb.f.Write(b)
	return err
}

func (fb *fileBackend) sync() error { return fb.f.Sync() }

func (fb *fileBackend) contents() ([]byte, error) {
	if _, err := fb.f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	b, err := io.ReadAll(fb.f)
	if err != nil {
		return nil, err
	}
	if _, err := fb.f.Seek(0, io.SeekEnd); err != nil {
		return nil, err
	}
	return b, nil
}

func (fb *fileBackend) truncate(n int) error {
	if err := fb.f.Truncate(int64(n)); err != nil {
		return fmt.Errorf("truncate: %w", err)
	}
	if _, err := fb.f.Seek(int64(n), io.SeekStart); err != nil {
		return fmt.Errorf("seek: %w", err)
	}
	return nil
}

func (fb *fileBackend) replace(b []byte) error {
	tmpPath := fb.path + ".ckpt"
	tmp, err := os.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("checkpoint temp: %w", err)
	}
	cleanup := func() {
		tmp.Close()
		os.Remove(tmpPath)
	}
	if _, err := tmp.Write(b); err != nil {
		cleanup()
		return fmt.Errorf("checkpoint write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return fmt.Errorf("checkpoint sync: %w", err)
	}
	// The swap: after the rename the open tmp handle refers to the file
	// now living at the log path, so it becomes the backend's handle with
	// no window where the log has no open file.
	if err := os.Rename(tmpPath, fb.path); err != nil {
		cleanup()
		return fmt.Errorf("checkpoint rename: %w", err)
	}
	// Past the rename the swap is complete: the open tmp handle refers to
	// the file now living at the log path, so it becomes the backend's
	// handle with no window where the log has no open file. A failed
	// directory fsync is benign for correctness — if the rename is lost to
	// a crash, recovery replays the complete old log, a valid
	// pre-checkpoint state — so it does not fail the swap.
	_ = syncDir(filepath.Dir(fb.path))
	old := fb.f
	fb.f = tmp
	if _, err := fb.f.Seek(0, io.SeekEnd); err != nil {
		old.Close()
		return fmt.Errorf("checkpoint seek: %w", err)
	}
	return old.Close()
}

func (fb *fileBackend) close() error { return fb.f.Close() }
