// Package wal implements the logging service of the paper's fig. 3: a
// checksummed append-only record log with replay.
//
// The transaction service writes its prepare and commit/rollback decision
// records here (presumed abort needs only the commit decision to be
// durable), and the activity service journals activity structure events so
// that the activity tree can be rebuilt after a crash (§3.4 of the paper).
//
// The on-disk format is a sequence of records:
//
//	u32 payload length | u32 CRC-32 (IEEE) of payload | payload
//	payload = u64 LSN | u16 kind | data bytes
//
// Replay stops at the first torn or corrupt record, which models a crash
// mid-write; everything before it is durable. Both a file-backed and an
// in-memory backend are provided; the in-memory backend supports
// deterministic crash injection for recovery tests.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
)

// Kind identifies the type of a log record. Kinds are assigned by the
// client packages (OTS, activity service); the log does not interpret them.
type Kind uint16

// Record is one durable log entry.
type Record struct {
	LSN  uint64
	Kind Kind
	Data []byte
}

// Log errors.
var (
	// ErrClosed reports use of a closed log.
	ErrClosed = errors.New("wal: log is closed")
	// ErrCrashed reports that crash injection stopped an append.
	ErrCrashed = errors.New("wal: simulated crash")
)

const headerSize = 8 // u32 length + u32 crc

// backend abstracts the durable medium.
type backend interface {
	append(b []byte) error
	sync() error
	contents() ([]byte, error)
	close() error
}

// Log is an append-only record log. Safe for concurrent use.
type Log struct {
	mu      sync.Mutex
	be      backend
	nextLSN uint64
	closed  bool
}

// NewMemory returns an empty in-memory log.
func NewMemory() *Log {
	l, err := newLog(&memBackend{})
	if err != nil {
		// An empty memory backend cannot fail to replay.
		panic(fmt.Sprintf("wal: NewMemory: %v", err))
	}
	return l
}

// OpenMemory returns an in-memory log initialised from a previous log's
// Snapshot, simulating a process restart over the same durable state.
func OpenMemory(data []byte) (*Log, error) {
	buf := make([]byte, len(data))
	copy(buf, data)
	return newLog(&memBackend{buf: buf})
}

// OpenFile opens (creating if needed) a file-backed log and replays it to
// establish the next LSN. A torn tail from a previous crash is truncated.
func OpenFile(path string) (*Log, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open %s: %w", path, err)
	}
	l, err := newLog(&fileBackend{f: f})
	if err != nil {
		f.Close()
		return nil, err
	}
	return l, nil
}

func newLog(be backend) (*Log, error) {
	l := &Log{be: be, nextLSN: 1}
	recs, valid, err := l.scan()
	if err != nil {
		return nil, err
	}
	if len(recs) > 0 {
		l.nextLSN = recs[len(recs)-1].LSN + 1
	}
	// Drop a torn tail so subsequent appends produce a clean log.
	if err := l.truncateTo(valid); err != nil {
		return nil, err
	}
	return l, nil
}

// Append durably adds a record and returns its LSN. The record is written
// and synced before Append returns.
func (l *Log) Append(kind Kind, data []byte) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	lsn := l.nextLSN
	rec := encodeRecord(Record{LSN: lsn, Kind: kind, Data: data})
	if err := l.be.append(rec); err != nil {
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	if err := l.be.sync(); err != nil {
		return 0, fmt.Errorf("wal: sync: %w", err)
	}
	l.nextLSN++
	return lsn, nil
}

// Records returns a copy of all durable records in LSN order.
func (l *Log) Records() ([]Record, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil, ErrClosed
	}
	recs, _, err := l.scan()
	return recs, err
}

// Replay calls fn for every durable record in order, stopping at the first
// error from fn.
func (l *Log) Replay(fn func(Record) error) error {
	recs, err := l.Records()
	if err != nil {
		return err
	}
	for _, r := range recs {
		if err := fn(r); err != nil {
			return err
		}
	}
	return nil
}

// Checkpoint rewrites the log keeping only records for which keep returns
// true. LSNs of kept records are preserved.
func (l *Log) Checkpoint(keep func(Record) bool) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	recs, _, err := l.scan()
	if err != nil {
		return err
	}
	var out []byte
	for _, r := range recs {
		if keep(r) {
			out = append(out, encodeRecord(r)...)
		}
	}
	if err := l.truncateTo(0); err != nil {
		return err
	}
	if len(out) > 0 {
		if err := l.be.append(out); err != nil {
			return fmt.Errorf("wal: checkpoint rewrite: %w", err)
		}
	}
	return l.be.sync()
}

// Snapshot returns a copy of the raw durable bytes, for simulated restarts.
func (l *Log) Snapshot() ([]byte, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil, ErrClosed
	}
	b, err := l.be.contents()
	if err != nil {
		return nil, err
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out, nil
}

// Close releases the backend. Further use returns ErrClosed.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	return l.be.close()
}

// InjectCrashAfter arranges for the backend to fail all appends after n
// more successful appends, simulating a crash. Only supported by the
// in-memory backend; it reports whether injection is supported.
func (l *Log) InjectCrashAfter(n int) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	mb, ok := l.be.(*memBackend)
	if !ok {
		return false
	}
	mb.failAfter = n
	mb.failArmed = true
	return true
}

// scan parses the backend contents, returning the valid records and the
// byte offset of the end of the last valid record.
func (l *Log) scan() ([]Record, int, error) {
	b, err := l.be.contents()
	if err != nil {
		return nil, 0, fmt.Errorf("wal: read: %w", err)
	}
	var (
		recs  []Record
		off   int
		valid int
	)
	for {
		if off+headerSize > len(b) {
			break // torn or clean end
		}
		length := binary.BigEndian.Uint32(b[off : off+4])
		sum := binary.BigEndian.Uint32(b[off+4 : off+8])
		if length < 10 || off+headerSize+int(length) > len(b) {
			break // torn tail
		}
		payload := b[off+headerSize : off+headerSize+int(length)]
		if crc32.ChecksumIEEE(payload) != sum {
			break // corrupt tail
		}
		data := make([]byte, len(payload)-10)
		copy(data, payload[10:])
		recs = append(recs, Record{
			LSN:  binary.BigEndian.Uint64(payload[0:8]),
			Kind: Kind(binary.BigEndian.Uint16(payload[8:10])),
			Data: data,
		})
		off += headerSize + int(length)
		valid = off
	}
	return recs, valid, nil
}

func (l *Log) truncateTo(n int) error {
	switch be := l.be.(type) {
	case *memBackend:
		if n < len(be.buf) {
			be.buf = be.buf[:n]
		}
		return nil
	case *fileBackend:
		if err := be.f.Truncate(int64(n)); err != nil {
			return fmt.Errorf("wal: truncate: %w", err)
		}
		if _, err := be.f.Seek(int64(n), io.SeekStart); err != nil {
			return fmt.Errorf("wal: seek: %w", err)
		}
		return nil
	default:
		return fmt.Errorf("wal: unknown backend %T", l.be)
	}
}

func encodeRecord(r Record) []byte {
	payload := make([]byte, 10+len(r.Data))
	binary.BigEndian.PutUint64(payload[0:8], r.LSN)
	binary.BigEndian.PutUint16(payload[8:10], uint16(r.Kind))
	copy(payload[10:], r.Data)
	out := make([]byte, headerSize+len(payload))
	binary.BigEndian.PutUint32(out[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(out[4:8], crc32.ChecksumIEEE(payload))
	copy(out[headerSize:], payload)
	return out
}

// memBackend keeps the log in memory with optional crash injection.
type memBackend struct {
	buf       []byte
	failAfter int
	failArmed bool
}

func (m *memBackend) append(b []byte) error {
	if m.failArmed {
		if m.failAfter <= 0 {
			// Simulate a torn write: half the record reaches the medium.
			m.buf = append(m.buf, b[:len(b)/2]...)
			return ErrCrashed
		}
		m.failAfter--
	}
	m.buf = append(m.buf, b...)
	return nil
}

func (m *memBackend) sync() error               { return nil }
func (m *memBackend) contents() ([]byte, error) { return m.buf, nil }
func (m *memBackend) close() error              { return nil }

// fileBackend appends to a real file with fsync on Sync.
type fileBackend struct {
	f *os.File
}

func (fb *fileBackend) append(b []byte) error {
	_, err := fb.f.Write(b)
	return err
}

func (fb *fileBackend) sync() error { return fb.f.Sync() }

func (fb *fileBackend) contents() ([]byte, error) {
	if _, err := fb.f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	b, err := io.ReadAll(fb.f)
	if err != nil {
		return nil, err
	}
	if _, err := fb.f.Seek(0, io.SeekEnd); err != nil {
		return nil, err
	}
	return b, nil
}

func (fb *fileBackend) close() error { return fb.f.Close() }
