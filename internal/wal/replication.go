package wal

import (
	"fmt"
	"time"
)

// This file is the log's replication surface: the primary side exposes its
// stream position and incremental reads, the follower side a write path
// that preserves shipped LSNs. The wire protocol over these primitives
// lives in internal/remote (ServeReplication / ReplicationFollower).
//
// Epochs delimit compactions: every Checkpoint (and InstallSnapshot)
// advances the epoch, so a follower streaming records within one epoch
// knows the records it already holds are a superset of what the primary
// dropped, and an epoch change tells it to resynchronise from a full
// Snapshot instead of chasing LSNs that no longer exist.

// State returns the log's replication position: the current epoch and the
// LSN the next appended record will receive.
func (l *Log) State() (epoch, nextLSN uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.epoch, l.nextLSN
}

// LastLSN returns the LSN of the most recently appended record, or 0 for a
// log that has never been appended to.
func (l *Log) LastLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN - 1
}

// RecordsSince returns, in LSN order, the durable records with LSN greater
// than after. Records compacted away by a checkpoint are not resurrected —
// callers track the epoch (State) to detect compaction.
func (l *Log) RecordsSince(after uint64) ([]Record, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil, ErrClosed
	}
	recs, _, _, err := l.scan()
	if err != nil {
		return nil, err
	}
	out := recs[:0:0]
	for _, r := range recs {
		if r.LSN > after {
			out = append(out, r)
		}
	}
	return out, nil
}

// WaitSince blocks until the log's stream state has moved past (epoch,
// after) — a record with LSN greater than after was appended, the epoch
// changed (checkpoint), or the log closed — or until timeout elapses. It
// reports whether the state moved; false means the timeout fired with the
// log still exactly at (epoch, after). Replication fetch long-polls on it.
func (l *Log) WaitSince(epoch, after uint64, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		l.mu.Lock()
		if l.closed || l.epoch != epoch || l.nextLSN > after+1 {
			l.mu.Unlock()
			return true
		}
		ch := l.waitCh
		l.mu.Unlock()
		wait := time.Until(deadline)
		if wait <= 0 {
			return false
		}
		timer := time.NewTimer(wait)
		select {
		case <-ch:
			timer.Stop()
		case <-timer.C:
			return false
		}
	}
}

// AppendRecord durably appends a record shipped from a primary, preserving
// its LSN. The record must be beyond the log's current position
// (ErrStaleRecord otherwise): followers apply the stream in order and drop
// duplicates. Like Append, the record is synced before returning and any
// torn tail from a failed append is repaired first.
func (l *Log) AppendRecord(r Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if r.LSN < l.nextLSN {
		return fmt.Errorf("%w: lsn %d, log already at %d", ErrStaleRecord, r.LSN, l.nextLSN-1)
	}
	if err := l.appendLocked(r); err != nil {
		return err
	}
	l.nextLSN = r.LSN + 1
	if r.Kind == KindTerm {
		l.noteTermRecordLocked(r)
	}
	l.notifyLocked()
	return nil
}

// InstallSnapshot atomically replaces the log's entire contents with a
// primary's Snapshot and adopts the primary's epoch, resynchronising a
// follower after the primary compacted records the follower had not yet
// fetched. The swap is crash-atomic (same mechanism as Checkpoint): a
// crash mid-install leaves either the old follower log or the complete
// snapshot.
func (l *Log) InstallSnapshot(epoch uint64, data []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if err := l.be.replace(data); err != nil {
		return fmt.Errorf("wal: install snapshot: %w", err)
	}
	recs, valid, total, err := l.scan()
	if err != nil {
		return fmt.Errorf("wal: install snapshot: %w", err)
	}
	if valid < total {
		// A snapshot is always a whole number of records; torn bytes mean
		// the shipped data was corrupt. The valid prefix is kept.
		if err := l.be.truncate(valid); err != nil {
			return fmt.Errorf("wal: install snapshot truncate: %w", err)
		}
		if err := l.be.sync(); err != nil {
			return fmt.Errorf("wal: install snapshot sync: %w", err)
		}
	}
	l.adoptScannedLocked(recs)
	if l.fenced && l.fencedTerm <= l.term {
		// The snapshot carries the term the fence was raised for: this
		// member now provably holds the new leader's history, so its
		// append path need not stay fenced.
		l.fenced = false
		l.fencedTerm = 0
	}
	l.size = valid
	l.dirty = false
	l.epoch = epoch
	l.notifyLocked()
	return nil
}
