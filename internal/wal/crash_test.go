package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// faultyBackend wraps a real backend with switchable failures so the
// crash-boundary matrix can run against real files: a torn append (half
// the bytes reach the medium before the error), a failed fsync, a failed
// atomic replace. Each knob counts down so a single operation can fail
// and the next succeed, like a participant coming back after a crash.
type faultyBackend struct {
	be          backend
	tearAppends int // tear the next n appends
	failSyncs   int // fail the next n syncs (bytes may have been written)
	failReplace int // fail the next n replaces without touching the medium
}

var errInjected = errors.New("wal_test: injected fault")

func (f *faultyBackend) append(b []byte) error {
	if f.tearAppends > 0 {
		f.tearAppends--
		_ = f.be.append(b[:len(b)/2])
		return errInjected
	}
	return f.be.append(b)
}

func (f *faultyBackend) sync() error {
	if f.failSyncs > 0 {
		f.failSyncs--
		return errInjected
	}
	return f.be.sync()
}

func (f *faultyBackend) contents() ([]byte, error) { return f.be.contents() }
func (f *faultyBackend) truncate(n int) error      { return f.be.truncate(n) }

func (f *faultyBackend) replace(b []byte) error {
	if f.failReplace > 0 {
		f.failReplace--
		return errInjected
	}
	return f.be.replace(b)
}

func (f *faultyBackend) close() error { return f.be.close() }

// fill appends n records with recognisable payloads and returns their data.
func fill(t *testing.T, l *Log, n int) []string {
	t.Helper()
	var out []string
	for i := 0; i < n; i++ {
		data := fmt.Sprintf("rec-%d", i)
		if _, err := l.Append(Kind(1+i%3), []byte(data)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		out = append(out, data)
	}
	return out
}

// wantRecords asserts the log replays exactly the given payloads in order.
func wantRecords(t *testing.T, l *Log, want []string) {
	t.Helper()
	recs, err := l.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(want) {
		t.Fatalf("got %d records, want %d (%v)", len(recs), len(want), want)
	}
	for i, r := range recs {
		if string(r.Data) != want[i] {
			t.Fatalf("record %d = %q, want %q", i, r.Data, want[i])
		}
	}
}

// TestCheckpointCrashAtomicityMemory is the checkpoint-atomicity
// regression: a crash during the checkpoint rewrite must lose nothing. On
// the pre-fix code Checkpoint truncated the log to zero and then
// re-appended the kept records, so a crash between the two steps lost
// every live record — including undelivered commit decisions.
func TestCheckpointCrashAtomicityMemory(t *testing.T) {
	l := NewMemory()
	want := fill(t, l, 4)

	l.InjectCrashAfter(0) // the checkpoint rewrite crashes
	err := l.Checkpoint(func(r Record) bool { return r.Kind == 1 })
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("checkpoint err = %v, want ErrCrashed", err)
	}
	l.InjectCrashAfter(-1)

	// Every record must still be there — the failed checkpoint must not
	// have touched the durable contents.
	wantRecords(t, l, want)

	// Simulated restart over the same durable state: still everything.
	snap, err := l.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	l2, err := OpenMemory(snap)
	if err != nil {
		t.Fatal(err)
	}
	wantRecords(t, l2, want)
}

// TestCheckpointCrashAtomicityFile runs the same regression against a real
// file: the rewrite fails (injected at the backend's atomic-replace step,
// i.e. before the rename became durable) and the on-disk log — reopened
// cold, as after a crash — must still hold every record.
func TestCheckpointCrashAtomicityFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.wal")
	l, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want := fill(t, l, 4)

	fb := &faultyBackend{be: l.be, failReplace: 1}
	l.be = fb
	if err := l.Checkpoint(func(r Record) bool { return r.Kind == 1 }); err == nil {
		t.Fatal("checkpoint succeeded despite injected replace failure")
	}
	wantRecords(t, l, want)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Crash-restart: reopen the path cold.
	l2, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	wantRecords(t, l2, want)
}

// TestCheckpointFileAtomicSwap pins the success path of the temp-file +
// rename checkpoint on a real file: the reopened log holds exactly the
// kept records with their LSNs preserved, appends continue the sequence,
// and no temp file is left behind.
func TestCheckpointFileAtomicSwap(t *testing.T) {
	path := filepath.Join(t.TempDir(), "swap.wal")
	l, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	fill(t, l, 6)
	if err := l.Checkpoint(func(r Record) bool { return r.LSN%2 == 0 }); err != nil {
		t.Fatal(err)
	}
	// Appends after the swap land in the renamed file.
	if lsn, err := l.Append(9, []byte("after")); err != nil || lsn != 7 {
		t.Fatalf("append after checkpoint: lsn=%d err=%v, want 7", lsn, err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".ckpt"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("temp checkpoint file left behind: stat err = %v", err)
	}

	l2, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	recs, err := l2.Records()
	if err != nil {
		t.Fatal(err)
	}
	wantLSNs := []uint64{2, 4, 6, 7}
	if len(recs) != len(wantLSNs) {
		t.Fatalf("got %d records, want %d", len(recs), len(wantLSNs))
	}
	for i, r := range recs {
		if r.LSN != wantLSNs[i] {
			t.Fatalf("record %d LSN = %d, want %d", i, r.LSN, wantLSNs[i])
		}
	}
}

// TestTornAppendRepairMemory is the torn-append regression: after a failed
// append leaves torn bytes at the tail, the next successful append must
// repair the tail first. On the pre-fix code the new record was written
// after the garbage, so replay stopped at the tear and every later record
// was silently invisible.
func TestTornAppendRepairMemory(t *testing.T) {
	l := NewMemory()
	if _, err := l.Append(1, []byte("first")); err != nil {
		t.Fatal(err)
	}
	l.InjectCrashAfter(0)
	if _, err := l.Append(1, []byte("lost")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("append err = %v, want ErrCrashed", err)
	}
	l.InjectCrashAfter(-1)

	// The append after the tear must be visible to replay.
	if _, err := l.Append(1, []byte("second")); err != nil {
		t.Fatal(err)
	}
	wantRecords(t, l, []string{"first", "second"})

	// And must survive a restart over the durable state.
	snap, err := l.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	l2, err := OpenMemory(snap)
	if err != nil {
		t.Fatal(err)
	}
	wantRecords(t, l2, []string{"first", "second"})
	// LSNs: the torn record's LSN was never durable, so "second" reuses it.
	recs, _ := l2.Records()
	if recs[1].LSN != 2 {
		t.Fatalf("second record LSN = %d, want 2 (torn LSN reused)", recs[1].LSN)
	}
}

// TestTornAppendRepairFile runs the torn-append regression against a real
// file through a write-failing backend: the tear leaves half a record on
// disk, the next append repairs it, and a cold reopen sees every record.
func TestTornAppendRepairFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.wal")
	l, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(1, []byte("first")); err != nil {
		t.Fatal(err)
	}
	fb := &faultyBackend{be: l.be, tearAppends: 1}
	l.be = fb
	if _, err := l.Append(1, []byte("lost")); err == nil {
		t.Fatal("append succeeded despite injected tear")
	}
	if _, err := l.Append(1, []byte("second")); err != nil {
		t.Fatalf("append after tear: %v", err)
	}
	wantRecords(t, l, []string{"first", "second"})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	wantRecords(t, l2, []string{"first", "second"})
}

// TestFailedSyncTreatedAsTorn pins the conservative handling of a failed
// fsync: the record's bytes may or may not be durable, so the next append
// truncates back to the last known-durable offset and rewrites cleanly.
func TestFailedSyncTreatedAsTorn(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sync.wal")
	l, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(1, []byte("first")); err != nil {
		t.Fatal(err)
	}
	fb := &faultyBackend{be: l.be, failSyncs: 1}
	l.be = fb
	if _, err := l.Append(1, []byte("unsure")); err == nil {
		t.Fatal("append succeeded despite injected sync failure")
	}
	if _, err := l.Append(1, []byte("second")); err != nil {
		t.Fatalf("append after sync failure: %v", err)
	}
	wantRecords(t, l, []string{"first", "second"})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	wantRecords(t, l2, []string{"first", "second"})
}

// TestFileTornTailEveryCut is the file-backend crash matrix: a multi-record
// log cut at every byte boundary — as a crash mid-write would leave it —
// must reopen to a clean prefix, accept appends, and reopen cleanly again.
// The mirror of TestTornTailTruncatedOnReopen against real files.
func TestFileTornTailEveryCut(t *testing.T) {
	src := NewMemory()
	for i := 0; i < 4; i++ {
		if _, err := src.Append(1, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	full, err := src.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	for cut := 0; cut <= len(full); cut++ {
		path := filepath.Join(dir, fmt.Sprintf("cut-%d.wal", cut))
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l, err := OpenFile(path)
		if err != nil {
			t.Fatalf("cut %d: open: %v", cut, err)
		}
		recs, err := l.Records()
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		for j, r := range recs {
			if r.LSN != uint64(j+1) || int(r.Data[0]) != j {
				t.Fatalf("cut %d: record %d = %+v, not a clean prefix", cut, j, r)
			}
		}
		if _, err := l.Append(9, []byte("new")); err != nil {
			t.Fatalf("cut %d: append after repair: %v", cut, err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		l2, err := OpenFile(path)
		if err != nil {
			t.Fatalf("cut %d: reopen: %v", cut, err)
		}
		recs2, err := l2.Records()
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if len(recs2) != len(recs)+1 || string(recs2[len(recs2)-1].Data) != "new" {
			t.Fatalf("cut %d: reopened records = %d, want prefix + appended", cut, len(recs2))
		}
		if err := l2.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestFileCheckpointThenCrashMatrix drives the checkpoint/torn-append/
// replay matrix against one real file: checkpoint, tear an append, repair,
// checkpoint again — reopening cold after every step.
func TestFileCheckpointThenCrashMatrix(t *testing.T) {
	path := filepath.Join(t.TempDir(), "matrix.wal")
	l, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	fill(t, l, 5)
	if err := l.Checkpoint(func(r Record) bool { return r.LSN > 2 }); err != nil {
		t.Fatal(err)
	}
	// Tear an append on the compacted log.
	l.InjectCrashAfter(0)
	if _, err := l.Append(7, []byte("torn")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("append err = %v, want ErrCrashed", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Cold restart: the torn record is gone, the compacted set intact.
	l2, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	wantRecords(t, l2, []string{"rec-2", "rec-3", "rec-4"})
	if _, err := l2.Append(8, []byte("alive")); err != nil {
		t.Fatal(err)
	}
	// Checkpoint everything away, then reopen: an empty log that appends.
	if err := l2.Checkpoint(func(Record) bool { return false }); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	l3, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l3.Close()
	wantRecords(t, l3, nil)
	if _, err := l3.Append(1, []byte("fresh")); err != nil {
		t.Fatal(err)
	}
	wantRecords(t, l3, []string{"fresh"})
}

// TestOpenFileRepairsTornTailDurably pins open-time repair: a log file
// ending in garbage half-way through a record header must open to the
// clean prefix, and the repair must already be on disk — a second process
// opening the same path sees the repaired log even if the first never
// appends.
func TestOpenFileRepairsTornTailDurably(t *testing.T) {
	path := filepath.Join(t.TempDir(), "repair.wal")
	l, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	fill(t, l, 2)
	snap, err := l.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: valid records plus torn garbage.
	torn := append(append([]byte{}, snap...), 0xDE, 0xAD, 0xBE)
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	wantRecords(t, l2, []string{"rec-0", "rec-1"})
	// The repair is durable without any append: the raw file has shrunk.
	if fi, err := os.Stat(path); err != nil || fi.Size() != int64(len(snap)) {
		t.Fatalf("file size = %v (err %v), want %d (torn tail truncated on open)",
			fi.Size(), err, len(snap))
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestWaitSinceWakesOnAppendCheckpointClose pins the long-poll primitive
// replication fetch is built on: WaitSince returns when a record beyond
// the watermark appears, when a checkpoint changes the epoch, or when the
// log closes — and times out (false) when nothing happens.
func TestWaitSinceWakesOnAppendCheckpointClose(t *testing.T) {
	l := NewMemory()
	epoch, next := l.State()
	if epoch != 0 || next != 1 {
		t.Fatalf("state = (%d, %d), want (0, 1)", epoch, next)
	}

	if l.WaitSince(0, 0, 10*time.Millisecond) {
		t.Fatal("WaitSince reported movement on an idle log")
	}

	done := make(chan bool, 1)
	go func() { done <- l.WaitSince(0, 0, 5*time.Second) }()
	time.Sleep(10 * time.Millisecond)
	if _, err := l.Append(1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if !<-done {
		t.Fatal("WaitSince missed the append")
	}

	// Already-satisfied watermark returns immediately.
	if !l.WaitSince(0, 0, 0) {
		t.Fatal("WaitSince(0,0) false with a record present")
	}

	go func() { done <- l.WaitSince(0, 1, 5*time.Second) }()
	time.Sleep(10 * time.Millisecond)
	if err := l.Checkpoint(func(Record) bool { return true }); err != nil {
		t.Fatal(err)
	}
	if !<-done {
		t.Fatal("WaitSince missed the epoch change")
	}
	if epoch, _ := l.State(); epoch != 1 {
		t.Fatalf("epoch after checkpoint = %d, want 1", epoch)
	}

	go func() { done <- l.WaitSince(1, 1, 5*time.Second) }()
	time.Sleep(10 * time.Millisecond)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if !<-done {
		t.Fatal("WaitSince missed the close")
	}
}

// TestAppendRecordFollowerStream pins the follower write path: shipped
// records keep their LSNs (including gaps a primary checkpoint left),
// stale shipments are rejected, and the stream survives a cold reopen.
func TestAppendRecordFollowerStream(t *testing.T) {
	path := filepath.Join(t.TempDir(), "follower.wal")
	l, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []Record{
		{LSN: 3, Kind: 1, Data: []byte("three")},
		{LSN: 7, Kind: 2, Data: []byte("seven")},
	} {
		if err := l.AppendRecord(r); err != nil {
			t.Fatalf("append record %d: %v", r.LSN, err)
		}
	}
	if err := l.AppendRecord(Record{LSN: 7, Kind: 2}); !errors.Is(err, ErrStaleRecord) {
		t.Fatalf("duplicate shipment err = %v, want ErrStaleRecord", err)
	}
	if got := l.LastLSN(); got != 7 {
		t.Fatalf("LastLSN = %d, want 7", got)
	}
	recs, err := l.RecordsSince(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].LSN != 7 {
		t.Fatalf("RecordsSince(3) = %+v, want just LSN 7", recs)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := l2.LastLSN(); got != 7 {
		t.Fatalf("LastLSN after reopen = %d, want 7", got)
	}
	// Ordinary appends continue past the shipped stream.
	if lsn, err := l2.Append(1, []byte("local")); err != nil || lsn != 8 {
		t.Fatalf("append after reopen: lsn=%d err=%v, want 8", lsn, err)
	}
}

// TestInstallSnapshotResynchronises pins follower resync: installing a
// primary snapshot atomically replaces the follower's contents and adopts
// the primary's epoch and position.
func TestInstallSnapshotResynchronises(t *testing.T) {
	primary := NewMemory()
	fill(t, primary, 5)
	if err := primary.Checkpoint(func(r Record) bool { return r.LSN >= 4 }); err != nil {
		t.Fatal(err)
	}
	pEpoch, pNext := primary.State()
	snap, err := primary.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "resync.wal")
	follower, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()
	// Stale divergent state from before the primary's checkpoint.
	if err := follower.AppendRecord(Record{LSN: 1, Kind: 1, Data: []byte("old")}); err != nil {
		t.Fatal(err)
	}
	if err := follower.InstallSnapshot(pEpoch, snap); err != nil {
		t.Fatal(err)
	}
	fEpoch, fNext := follower.State()
	if fEpoch != pEpoch || fNext != pNext {
		t.Fatalf("follower state = (%d, %d), want primary's (%d, %d)", fEpoch, fNext, pEpoch, pNext)
	}
	wantRecords(t, follower, []string{"rec-3", "rec-4"})
}
