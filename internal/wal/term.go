package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Coordinator-group terms: a monotonic fencing epoch stored durably in the
// log itself. A leader claims a term by appending a KindTerm record
// (AdoptTerm); the record ships to every follower through the ordinary
// replication stream, so term adoption needs no side channel and survives
// checkpoints (Checkpoint force-keeps the latest term record). A member
// that learns of a higher term — a deposed primary told by a claim, or a
// stale server probed by an up-to-date follower — fences its local append
// path (Fence): every subsequent Append fails with ErrFenced until the
// member either wins a later election (AdoptTerm clears the fence) or
// truncates its unreplicated suffix and rejoins as a follower
// (TruncateAfter + the streamed term record).
//
// Terms are deliberately not consensus: the election protocol in
// internal/remote picks the member with the highest durable LSN (member-ID
// tiebreak) among reachable peers. The term record marks where the new
// leader's history begins — termStart — which is exactly the truncation
// point a rejoining deposed leader needs: everything below the term record
// was streamed from the old leader and is a shared prefix; everything the
// old leader holds at or beyond it was never replicated.

// KindTerm is the record kind of durable term records. It is owned by the
// log itself and lives at the top of the kind space so client packages
// (OTS 0x11–0x14, activity journal 0x21–0x25) can never collide with it.
// Replay switches in those packages ignore unknown kinds, so term records
// flow through shared logs harmlessly.
const KindTerm Kind = 0xFFF0

// ErrFenced reports an append rejected because the log has adopted (or
// been told of) a higher term than the one this process was leading: a
// deposed primary's late writes must not reach the log.
var ErrFenced = errors.New("wal: log is fenced by a higher term")

// EncodeTermRecord builds the data payload of a KindTerm record.
func EncodeTermRecord(term uint64, leaderID string) []byte {
	b := make([]byte, 8+len(leaderID))
	binary.BigEndian.PutUint64(b[:8], term)
	copy(b[8:], leaderID)
	return b
}

// DecodeTermRecord parses a KindTerm record payload.
func DecodeTermRecord(data []byte) (term uint64, leaderID string, err error) {
	if len(data) < 8 {
		return 0, "", fmt.Errorf("wal: term record of %d bytes", len(data))
	}
	return binary.BigEndian.Uint64(data[:8]), string(data[8:]), nil
}

// TermState is a snapshot of the log's group-membership position.
type TermState struct {
	// Term is the highest term durably recorded in the log (0 before any
	// election).
	Term uint64
	// Start is the LSN of the record that began Term (0 when Term is 0).
	Start uint64
	// Leader is the member ID that claimed Term.
	Leader string
	// Fenced reports whether local appends are rejected with ErrFenced.
	Fenced bool
	// FencedAt is the higher term the fence was raised for (0 when not
	// fenced). It can exceed Term: the fence is in-memory evidence, the
	// durable record arrives later via the replication stream.
	FencedAt uint64
}

// TermState returns the log's current term position.
func (l *Log) TermState() TermState {
	l.mu.Lock()
	defer l.mu.Unlock()
	return TermState{
		Term:     l.term,
		Start:    l.termStart,
		Leader:   l.termLeader,
		Fenced:   l.fenced,
		FencedAt: l.fencedTerm,
	}
}

// Term returns the highest term durably recorded in the log.
func (l *Log) Term() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.term
}

// KnownTerm returns the highest term this log has evidence of: the durable
// term, or the fence term when a fence was raised for a term whose record
// has not arrived yet. Followers advertise it on repl_fetch.
func (l *Log) KnownTerm() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.fencedTerm > l.term {
		return l.fencedTerm
	}
	return l.term
}

// Fenced reports whether local appends are currently rejected.
func (l *Log) Fenced() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.fenced
}

// Fence rejects all subsequent Append calls with ErrFenced because a
// higher term than this log's durable one exists. It reports whether the
// fence was raised (false when term is not beyond the durable term — stale
// evidence must not fence a legitimate leader). The fence is in-memory:
// the durable term record arrives through the replication stream once the
// member rejoins, and a restarted process re-discovers the higher term
// from its peers before serving.
func (l *Log) Fence(term uint64) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if term <= l.term {
		return false
	}
	l.fenced = true
	if term > l.fencedTerm {
		l.fencedTerm = term
	}
	return true
}

// AdoptTerm durably claims term for leaderID: the term record is appended
// (and synced) to the log, the fence — if any — is cleared, and the
// record's LSN (the new term's start) is returned. The term must be
// strictly beyond both the durable term and any fence term, or ErrFenced
// is returned: claiming a term at or below one that is known to exist
// would let two leaders share a fencing epoch.
func (l *Log) AdoptTerm(term uint64, leaderID string) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	// <= on both bounds: a member fenced at term T must not itself claim T —
	// the fence is evidence that some other member owns that epoch, and two
	// leaders sharing one fencing epoch is exactly what terms exist to
	// prevent.
	if term <= l.term || term <= l.fencedTerm {
		return 0, fmt.Errorf("%w: claiming term %d, term %d known", ErrFenced, term, max(l.term, l.fencedTerm))
	}
	lsn := l.nextLSN
	if err := l.appendLocked(Record{LSN: lsn, Kind: KindTerm, Data: EncodeTermRecord(term, leaderID)}); err != nil {
		return 0, err
	}
	l.nextLSN++
	l.term = term
	l.termStart = lsn
	l.termLeader = leaderID
	l.termMarks = append(l.termMarks, termMark{term: term, lsn: lsn})
	l.fenced = false
	l.fencedTerm = 0
	l.notifyLocked()
	return lsn, nil
}

// termMark is one durable KindTerm record's position. The log caches every
// term record's (term, LSN) in memory — rebuilt whenever the record set is
// rescanned and folded in on every append/adopt — so TermStartAfter can
// answer without rescanning the backend.
type termMark struct {
	term, lsn uint64
}

// TermStartAfter returns the LSN of the earliest durable term record
// whose term is beyond term, and whether one exists. It is the exact
// rejoin truncation bound for a deposed leader that last led term: every
// record below that LSN is a prefix shared with the current leader (each
// leader streamed its predecessor's log before claiming), and everything
// at or beyond it on the deposed leader's log was never replicated.
// Answered from the in-memory term-record cache — fenceFetch calls this
// on every fetch from a stale-term follower, so it must not cost a log
// scan per polling round.
func (l *Log) TermStartAfter(term uint64) (uint64, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, false
	}
	for _, m := range l.termMarks {
		if m.term > term {
			return m.lsn, true
		}
	}
	return 0, false
}

// TruncateAfter durably discards every record with LSN beyond lsn — a
// rejoining deposed leader cutting its unreplicated suffix back to the new
// leader's term start. The truncation reuses the torn-tail repair path
// (truncate + sync), so it is crash-atomic: a crash before the sync leaves
// the old suffix for the next open's repair scan to handle; after it, the
// suffix is gone for good. The log's position and term state are
// recomputed from the surviving records; an existing fence stays up —
// truncation prepares a rejoin, it does not confer leadership.
func (l *Log) TruncateAfter(lsn uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if err := l.repairLocked(); err != nil {
		return err
	}
	recs, _, _, err := l.scan()
	if err != nil {
		return err
	}
	off := 0
	cut := len(recs)
	for i, r := range recs {
		if r.LSN > lsn {
			cut = i
			break
		}
		off += headerSize + 10 + len(r.Data)
	}
	if off < l.size {
		if err := l.be.truncate(off); err != nil {
			return fmt.Errorf("wal: truncate suffix: %w", err)
		}
		if err := l.be.sync(); err != nil {
			return fmt.Errorf("wal: sync suffix truncation: %w", err)
		}
	}
	l.size = off
	l.dirty = false
	l.adoptScannedLocked(recs[:cut])
	l.notifyLocked()
	return nil
}

// adoptScannedLocked recomputes the log's stream position and term state
// from a scanned record set (open, truncation, snapshot install). The
// caller must hold l.mu.
func (l *Log) adoptScannedLocked(recs []Record) {
	l.nextLSN = 1
	if len(recs) > 0 {
		l.nextLSN = recs[len(recs)-1].LSN + 1
	}
	l.term, l.termStart, l.termLeader = 0, 0, ""
	l.termMarks = l.termMarks[:0]
	for _, r := range recs {
		if r.Kind != KindTerm {
			continue
		}
		if term, leader, err := DecodeTermRecord(r.Data); err == nil {
			l.termMarks = append(l.termMarks, termMark{term: term, lsn: r.LSN})
			l.term, l.termStart, l.termLeader = term, r.LSN, leader
		}
	}
}

// noteTermRecordLocked folds a freshly appended KindTerm record into the
// term state: followers streaming a new leader's log adopt its term as the
// record lands, and a fence raised for that term (the claim preceding the
// stream) comes down — the member is now provably inside the new term's
// history. The caller must hold l.mu.
func (l *Log) noteTermRecordLocked(r Record) {
	term, leader, err := DecodeTermRecord(r.Data)
	if err != nil || term < l.term {
		return
	}
	l.termMarks = append(l.termMarks, termMark{term: term, lsn: r.LSN})
	l.term = term
	l.termStart = r.LSN
	l.termLeader = leader
	if l.fencedTerm <= term {
		l.fenced = false
		l.fencedTerm = 0
	}
}
