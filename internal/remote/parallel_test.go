package remote

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/extendedtx/activityservice/internal/cdr"
	"github.com/extendedtx/activityservice/internal/core"
	"github.com/extendedtx/activityservice/internal/orb"
	"github.com/extendedtx/activityservice/internal/trace"
)

// runRemoteBroadcast drives one protocol whose actions live behind the ORB
// on another node, under the given delivery policy, and returns the encoded
// collated outcome plus the coordinator's compact trace — the remote mirror
// of runBroadcast in internal/core/delivery_test.go.
func runRemoteBroadcast(t *testing.T, policy core.DeliveryPolicy, nSignals, nActions int, latency func(i int) time.Duration) ([]byte, []string) {
	t.Helper()
	serverORB := orb.New()
	defer serverORB.Shutdown()
	if _, err := serverORB.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	clientORB := orb.New(orb.WithPoolSize(4))
	defer clientORB.Shutdown()

	rec := trace.New()
	svc := core.New(core.WithTrace(rec), core.WithRetryPolicy(core.RetryPolicy{Attempts: 1}))
	a := svc.Begin("remote-fanout")

	var names []string
	for i := 0; i < nSignals; i++ {
		names = append(names, fmt.Sprintf("sig%d", i))
	}
	set := core.NewSequenceSet("s", names...).Collate(func(responses []core.Outcome) core.Outcome {
		parts := make([]string, len(responses))
		for i, r := range responses {
			parts[i] = r.Name
		}
		return core.Outcome{Name: "collated", Data: strings.Join(parts, ",")}
	})
	set.SetDelivery(policy)
	if err := a.RegisterSignalSet(set); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < nActions; i++ {
		i := i
		ref := ExportAction(serverORB, core.ActionFunc(
			func(_ context.Context, sig core.Signal) (core.Outcome, error) {
				if latency != nil {
					if d := latency(i); d > 0 {
						time.Sleep(d)
					}
				}
				return core.Outcome{Name: fmt.Sprintf("ok-%d-%s", i, sig.Name)}, nil
			}))
		ref, _ = serverORB.IOR(ref.Key)
		if _, err := a.AddNamedAction("s", fmt.Sprintf("act%d", i), ImportAction(clientORB, ref)); err != nil {
			t.Fatal(err)
		}
	}

	out, err := a.Signal(context.Background(), "s")
	if err != nil {
		t.Fatalf("Signal(%s): %v", policy.Mode, err)
	}
	e := cdr.NewEncoder(64)
	if err := out.Encode(e); err != nil {
		t.Fatalf("encode outcome: %v", err)
	}
	return append([]byte(nil), e.Bytes()...), rec.Sequence()
}

// TestRemoteDifferentialParallelMatchesSerial is the distributed
// differential property test: fanning a broadcast out to remote actions in
// parallel over the pooled transport produces byte-identical collated
// outcomes and identical traces to serial remote delivery.
func TestRemoteDifferentialParallelMatchesSerial(t *testing.T) {
	shapes := []struct {
		signals, actions, seed int
	}{
		{1, 4, 0},
		{2, 8, 3},
		{3, 5, 1},
		{1, 12, 7},
	}
	for _, sh := range shapes {
		sh := sh
		t.Run(fmt.Sprintf("signals=%d/actions=%d", sh.signals, sh.actions), func(t *testing.T) {
			latency := func(i int) time.Duration {
				// Deterministic per-action jitter so fast/slow interleavings
				// vary across actions.
				return time.Duration((sh.seed+i*7)%5) * 200 * time.Microsecond
			}
			serialOut, serialTrace := runRemoteBroadcast(t,
				core.DeliveryPolicy{Mode: core.DeliverSerial}, sh.signals, sh.actions, latency)
			parallelOut, parallelTrace := runRemoteBroadcast(t,
				core.Parallel(), sh.signals, sh.actions, latency)
			if string(serialOut) != string(parallelOut) {
				t.Errorf("outcome mismatch:\nserial   = %x\nparallel = %x", serialOut, parallelOut)
			}
			if strings.Join(serialTrace, "\n") != strings.Join(parallelTrace, "\n") {
				t.Errorf("trace mismatch:\nserial:\n%s\nparallel:\n%s",
					strings.Join(serialTrace, "\n"), strings.Join(parallelTrace, "\n"))
			}
		})
	}
}

// TestRemoteParallelFanoutIsConcurrent proves the delivery engine and the
// connection pool compose end-to-end: a broadcast to remote actions that
// each hold the wire for 40ms completes in far less than fanout×40ms.
func TestRemoteParallelFanoutIsConcurrent(t *testing.T) {
	const fanout = 8
	const actionLatency = 40 * time.Millisecond

	serverORB := orb.New()
	defer serverORB.Shutdown()
	if _, err := serverORB.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	clientORB := orb.New(orb.WithPoolSize(4))
	defer clientORB.Shutdown()

	svc := core.New()
	a := svc.Begin("concurrent", core.WithActivityDelivery(core.Parallel()))
	set := core.NewSequenceSet("s", "ping")
	if err := a.RegisterSignalSet(set); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < fanout; i++ {
		ref := ExportAction(serverORB, core.ActionFunc(
			func(context.Context, core.Signal) (core.Outcome, error) {
				time.Sleep(actionLatency)
				return core.Outcome{Name: "ok"}, nil
			}))
		ref, _ = serverORB.IOR(ref.Key)
		if _, err := a.AddAction("s", ImportAction(clientORB, ref)); err != nil {
			t.Fatal(err)
		}
	}

	start := time.Now()
	if _, err := a.Signal(context.Background(), "s"); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if serialFloor := time.Duration(fanout) * actionLatency; elapsed >= serialFloor/2 {
		t.Fatalf("parallel remote fan-out took %s, want well under the %s serial floor", elapsed, serialFloor)
	}
	if got := len(set.Responses()); got != fanout {
		t.Fatalf("collated %d responses, want %d", got, fanout)
	}
}
