package remote

import (
	"context"
	"errors"
	"sync/atomic"

	"github.com/extendedtx/activityservice/internal/cdr"
	"github.com/extendedtx/activityservice/internal/core"
	"github.com/extendedtx/activityservice/internal/orb"
)

// Activity-factory servant identity. activityd serves one under the
// well-known key; the shard router aims routed begins at the factory of
// the member owning the activity name.
const (
	// ActivityFactoryTypeID is the interface id of the activity factory.
	ActivityFactoryTypeID = "IDL:ActivityService/ActivityFactory:1.0"
	// ActivityFactoryKey is the well-known object key the factory serves
	// under.
	ActivityFactoryKey = "activity-factory"
)

// ActivityFactory creates activities on request and exports their
// coordinators: operation "begin" takes an activity name and returns
// the coordinator IOR. When the factory is sharded (WithFactoryShard),
// every begin is admitted by the member's CheckOwner guard first, and
// a draining core.Service converts into a WrongShard redirect too — the
// begin never ran, so the client-side router retries it elsewhere
// without risking double execution.
type ActivityFactory struct {
	svc      *core.Service
	orb      *orb.ORB
	delivery core.DeliveryPolicy
	member   *ShardMember

	ref    orb.IOR
	begins atomic.Uint64
}

// FactoryOption configures a served activity factory.
type FactoryOption func(*ActivityFactory)

// WithFactoryDelivery stamps remotely begun activities with the given
// delivery policy (remote activities coordinate remote actions — the
// latency-bound regime parallel and tree fan-out target).
func WithFactoryDelivery(p core.DeliveryPolicy) FactoryOption {
	return func(f *ActivityFactory) { f.delivery = p }
}

// WithFactoryShard guards every begin with the member's shard check:
// names this member does not own are refused with a WrongShard
// redirect before any state is created.
func WithFactoryShard(m *ShardMember) FactoryOption {
	return func(f *ActivityFactory) { f.member = m }
}

// ServeActivityFactory activates an activity factory for svc on o under
// the well-known ActivityFactoryKey.
func ServeActivityFactory(o *orb.ORB, svc *core.Service, opts ...FactoryOption) *ActivityFactory {
	f := &ActivityFactory{svc: svc, orb: o}
	for _, opt := range opts {
		opt(f)
	}
	f.ref = o.RegisterServantWithKey(ActivityFactoryKey, ActivityFactoryTypeID, f)
	return f
}

// Ref returns the factory's reference.
func (f *ActivityFactory) Ref() orb.IOR { return f.ref }

// Begins returns how many activities this factory has begun — the
// counter exactly-once tests assert on.
func (f *ActivityFactory) Begins() uint64 { return f.begins.Load() }

// Dispatch implements orb.Servant.
func (f *ActivityFactory) Dispatch(_ context.Context, op string, in *cdr.Decoder) ([]byte, error) {
	if op != "begin" {
		return nil, orb.Systemf(orb.CodeBadOperation, "ActivityFactory has no operation %q", op)
	}
	name := in.ReadString()
	if err := in.Err(); err != nil {
		return nil, orb.Systemf(orb.CodeMarshal, "begin: %v", err)
	}
	if f.member != nil {
		if err := f.member.CheckOwner(name); err != nil {
			return nil, err
		}
	}
	var opts []core.BeginOption
	if f.delivery.Mode != 0 {
		opts = append(opts, core.WithActivityDelivery(f.delivery))
	}
	a, err := f.svc.TryBegin(name, opts...)
	if errors.Is(err, core.ErrServiceDraining) {
		// The map may not have marked this member draining yet (local
		// drain beats map propagation); answer the same redirect a shard
		// mismatch would so the client refreshes and retries elsewhere.
		epoch := uint64(0)
		owner := "<draining>"
		if f.member != nil {
			if m := f.member.Map(); m != nil {
				epoch = m.Epoch
				if o, ok := m.Owner(name); ok && o.ID != f.member.ID() {
					owner = o.ID
				}
			}
		}
		return nil, wrongShard(epoch, owner, name)
	} else if err != nil {
		return nil, err
	}
	f.begins.Add(1)
	// Activities created remotely complete through their default set;
	// give them one so completion collates participant responses.
	set := core.NewSequenceSet(core.DefaultCompletionSet, "complete").
		Collate(func(rs []core.Outcome) core.Outcome {
			return core.Outcome{Name: "completed", Data: int64(len(rs))}
		})
	if err := a.RegisterSignalSet(set); err != nil {
		_, _ = a.Complete(context.Background())
		return nil, err
	}
	ref := ExportActivity(f.orb, a)
	// Re-mint through the ORB so the reference carries every live
	// profile (listen + advertise endpoints).
	if minted, ok := f.orb.IOR(ref.Key); ok {
		ref = minted
	}
	e := cdr.NewEncoder(64)
	ref.Encode(e)
	return e.Bytes(), nil
}
