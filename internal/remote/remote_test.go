package remote

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"github.com/extendedtx/activityservice/internal/core"
	"github.com/extendedtx/activityservice/internal/orb"
)

// fixture wires a "server" node (activity host) and a "client" node
// (participant host) over TCP.
type fixture struct {
	serverORB *orb.ORB
	clientORB *orb.ORB
	svc       *core.Service
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	serverORB := orb.New()
	t.Cleanup(serverORB.Shutdown)
	if _, err := serverORB.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	clientORB := orb.New()
	t.Cleanup(clientORB.Shutdown)
	InstallPropagation(serverORB)
	InstallPropagation(clientORB)
	return &fixture{serverORB: serverORB, clientORB: clientORB, svc: core.New()}
}

func TestRemoteActionReceivesSignals(t *testing.T) {
	fx := newFixture(t)
	ctx := context.Background()

	// The participant lives on the client node.
	var received atomic.Int32
	participant := core.ActionFunc(func(_ context.Context, sig core.Signal) (core.Outcome, error) {
		received.Add(1)
		return core.Outcome{Name: "ack:" + sig.Name}, nil
	})
	ref := ExportAction(fx.clientORB, participant)
	if _, err := fx.clientORB.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	ref, _ = fx.clientORB.IOR(ref.Key)

	// The activity lives on the server node and signals the remote action.
	a := fx.svc.Begin("distributed")
	set := core.NewSequenceSet("proto", "ping", "pong")
	if err := a.RegisterSignalSet(set); err != nil {
		t.Fatal(err)
	}
	if _, err := a.AddAction("proto", ImportAction(fx.serverORB, ref)); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Signal(ctx, "proto"); err != nil {
		t.Fatal(err)
	}
	if received.Load() != 2 {
		t.Fatalf("participant received %d signals, want 2", received.Load())
	}
	rs := set.Responses()
	if len(rs) != 2 || rs[0].Name != "ack:ping" || rs[1].Name != "ack:pong" {
		t.Fatalf("responses = %v", rs)
	}
}

func TestRemoteActionErrorSurfaces(t *testing.T) {
	fx := newFixture(t)
	bad := core.ActionFunc(func(context.Context, core.Signal) (core.Outcome, error) {
		return core.Outcome{}, errors.New("participant refused")
	})
	ref := ExportAction(fx.serverORB, bad)
	ref, _ = fx.serverORB.IOR(ref.Key)

	proxy := ImportAction(fx.clientORB, ref)
	_, err := proxy.ProcessSignal(context.Background(), core.Signal{Name: "x", SetName: "s"})
	var re *orb.RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want RemoteError", err)
	}
}

func TestActivityProxyEnlistmentAndCompletion(t *testing.T) {
	fx := newFixture(t)
	ctx := context.Background()

	// Host an activity with a completion set on the server.
	a := fx.svc.Begin("hosted")
	set := core.NewSequenceSet(core.DefaultCompletionSet, "finish").Collate(func(rs []core.Outcome) core.Outcome {
		return core.Outcome{Name: "collated", Data: int64(len(rs))}
	})
	if err := a.RegisterSignalSet(set); err != nil {
		t.Fatal(err)
	}
	coordRef := ExportActivity(fx.serverORB, a)
	coordRef, _ = fx.serverORB.IOR(coordRef.Key)

	// The client enrolls a local action and drives completion remotely.
	var got atomic.Value
	proxy := NewActivityProxy(fx.clientORB, coordRef)
	if _, err := fx.clientORB.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if _, err := proxy.AddAction(ctx, core.DefaultCompletionSet, core.ActionFunc(
		func(_ context.Context, sig core.Signal) (core.Outcome, error) {
			got.Store(sig.Name)
			return core.Outcome{Name: "enlisted-ok"}, nil
		})); err != nil {
		t.Fatal(err)
	}

	st, cs, err := proxy.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st != core.ActivityActive || cs != core.CompletionSuccess {
		t.Fatalf("status = %s/%s", st, cs)
	}

	out, err := proxy.Complete(ctx, core.CompletionSuccess)
	if err != nil {
		t.Fatal(err)
	}
	if out.Name != "collated" || out.Data != int64(1) {
		t.Fatalf("outcome = %+v", out)
	}
	if got.Load() != "finish" {
		t.Fatalf("enlisted action saw %v", got.Load())
	}
	if a.State() != core.ActivityCompleted {
		t.Fatalf("activity state = %s", a.State())
	}
}

func TestActivityContextPropagates(t *testing.T) {
	fx := newFixture(t)

	// A servant on the server that reports the propagated activity lineage.
	var observed atomic.Value
	echo := core.ActionFunc(func(ctx context.Context, _ core.Signal) (core.Outcome, error) {
		if pc, ok := PropagatedFrom(ctx); ok {
			names := make([]string, 0, len(pc.Path))
			for _, e := range pc.Path {
				names = append(names, e.Name)
			}
			observed.Store(names)
			return core.Outcome{Name: "saw-context"}, nil
		}
		return core.Outcome{Name: "no-context"}, nil
	})
	ref := ExportAction(fx.serverORB, echo)
	ref, _ = fx.serverORB.IOR(ref.Key)

	// Call from within a nested activity on the client.
	root := fx.svc.Begin("root")
	child, err := root.BeginChild("child")
	if err != nil {
		t.Fatal(err)
	}
	pg := core.NewTupleSpace("env", core.VisibilityShared, core.PropagateByValue)
	_ = pg.Set("locale", "en_GB")
	_ = child.AddPropertyGroup(pg)

	ctx := core.NewContext(context.Background(), child)
	proxy := ImportAction(fx.clientORB, ref)
	out, err := proxy.ProcessSignal(ctx, core.Signal{Name: "probe", SetName: "s"})
	if err != nil {
		t.Fatal(err)
	}
	if out.Name != "saw-context" {
		t.Fatalf("outcome = %+v", out)
	}
	names, _ := observed.Load().([]string)
	if len(names) != 2 || names[0] != "root" || names[1] != "child" {
		t.Fatalf("propagated lineage = %v", names)
	}

	// Without an activity in context, nothing propagates.
	out, err = proxy.ProcessSignal(context.Background(), core.Signal{Name: "probe", SetName: "s"})
	if err != nil {
		t.Fatal(err)
	}
	if out.Name != "no-context" {
		t.Fatalf("outcome without activity = %+v", out)
	}
}

func TestPropagationCarriesByValueProperties(t *testing.T) {
	fx := newFixture(t)
	var localeSeen atomic.Value
	probe := core.ActionFunc(func(ctx context.Context, _ core.Signal) (core.Outcome, error) {
		pc, ok := PropagatedFrom(ctx)
		if !ok {
			return core.Outcome{Name: "no-context"}, nil
		}
		localeSeen.Store(pc.Properties["env"]["locale"])
		return core.Outcome{Name: "ok"}, nil
	})
	ref := ExportAction(fx.serverORB, probe)
	ref, _ = fx.serverORB.IOR(ref.Key)

	a := fx.svc.Begin("A")
	pg := core.NewTupleSpace("env", core.VisibilityShared, core.PropagateByValue)
	_ = pg.Set("locale", "fr_FR")
	_ = a.AddPropertyGroup(pg)

	ctx := core.NewContext(context.Background(), a)
	if _, err := ImportAction(fx.clientORB, ref).ProcessSignal(ctx, core.Signal{Name: "p", SetName: "s"}); err != nil {
		t.Fatal(err)
	}
	if localeSeen.Load() != "fr_FR" {
		t.Fatalf("locale = %v", localeSeen.Load())
	}
}
