package remote

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/extendedtx/activityservice/internal/cluster"
	"github.com/extendedtx/activityservice/internal/core"
	"github.com/extendedtx/activityservice/internal/orb"
)

// shardHost is one in-process fleet member: an ORB, a core Service, a
// shard member guard, and a sharded activity factory.
type shardHost struct {
	orb     *orb.ORB
	svc     *core.Service
	member  *ShardMember
	factory *ActivityFactory
}

// newShardHost builds a listening member host registered nowhere; the
// caller adds it to the authority's map.
func newShardHost(t *testing.T, id string, authorityRef orb.IOR) *shardHost {
	t.Helper()
	o := orb.New()
	t.Cleanup(o.Shutdown)
	if _, err := o.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	svc := core.New()
	member := NewShardMember(o, id, authorityRef, WithOnDrain(svc.Drain))
	t.Cleanup(member.Stop)
	factory := ServeActivityFactory(o, svc, WithFactoryShard(member))
	return &shardHost{orb: o, svc: svc, member: member, factory: factory}
}

func (h *shardHost) clusterMember(id string) cluster.Member {
	return cluster.Member{ID: id, Endpoints: h.orb.Endpoints(), Weight: 1}
}

// shardFixture is an authority host plus n member hosts joined to it.
type shardFixture struct {
	authORB *orb.ORB
	auth    *ShardAuthority
	authRef orb.IOR
	hosts   map[string]*shardHost
}

func newShardFixture(t *testing.T, ids ...string) *shardFixture {
	t.Helper()
	authORB := orb.New()
	t.Cleanup(authORB.Shutdown)
	if _, err := authORB.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	auth := NewShardAuthority(nil)
	ServeShardMap(authORB, auth)
	authRef := ShardMapAt(authORB.Endpoints()...)

	fx := &shardFixture{authORB: authORB, auth: auth, authRef: authRef, hosts: map[string]*shardHost{}}
	ctx := context.Background()
	for _, id := range ids {
		h := newShardHost(t, id, authRef)
		fx.hosts[id] = h
		if _, err := fx.auth.Add(h.clusterMember(id)); err != nil {
			t.Fatalf("add %s: %v", id, err)
		}
		_ = ctx
	}
	for _, h := range fx.hosts {
		if err := h.member.Sync(context.Background()); err != nil {
			t.Fatalf("sync %s: %v", h.member.ID(), err)
		}
	}
	return fx
}

// newClientORB returns a bare client-side ORB.
func newClientORB(t *testing.T) *orb.ORB {
	t.Helper()
	o := orb.New()
	t.Cleanup(o.Shutdown)
	return o
}

func TestShardMapClientVerbs(t *testing.T) {
	fx := newShardFixture(t)
	ctx := context.Background()
	c := NewShardMapClient(newClientORB(t), fx.authRef)

	m, err := c.Fetch(ctx)
	if err != nil {
		t.Fatalf("Fetch: %v", err)
	}
	if m.Epoch != 0 || len(m.Members) != 0 {
		t.Fatalf("initial map = epoch %d, %d members", m.Epoch, len(m.Members))
	}

	epoch, err := c.Add(ctx, cluster.Member{ID: "a", Endpoints: []string{"127.0.0.1:1"}, Weight: 1})
	if err != nil {
		t.Fatalf("Add: %v", err)
	}
	if epoch != 1 {
		t.Fatalf("Add epoch = %d, want 1", epoch)
	}
	if epoch, err = c.Drain(ctx, "a"); err != nil || epoch != 2 {
		t.Fatalf("Drain = %d, %v", epoch, err)
	}
	if epoch, err = c.Remove(ctx, "a"); err != nil || epoch != 3 {
		t.Fatalf("Remove = %d, %v", epoch, err)
	}
	if _, err = c.Remove(ctx, "a"); err == nil {
		t.Fatal("Remove of absent member succeeded")
	}
	m, err = c.Fetch(ctx)
	if err != nil {
		t.Fatalf("Fetch: %v", err)
	}
	if m.Epoch != 3 || len(m.Members) != 0 {
		t.Fatalf("final map = epoch %d, %d members", m.Epoch, len(m.Members))
	}
}

func TestShardMapWatchWakesOnBump(t *testing.T) {
	fx := newShardFixture(t)
	c := NewShardMapClient(newClientORB(t), fx.authRef)
	ctx := context.Background()

	// A watch at the current epoch with a short poll returns unchanged.
	m, err := c.Watch(ctx, 0, 50*time.Millisecond)
	if err != nil {
		t.Fatalf("Watch: %v", err)
	}
	if m.Epoch != 0 {
		t.Fatalf("unchanged watch epoch = %d", m.Epoch)
	}

	// A watch parked behind a bump wakes with the new map.
	var wg sync.WaitGroup
	wg.Add(1)
	var got *cluster.Map
	var gotErr error
	go func() {
		defer wg.Done()
		got, gotErr = c.Watch(ctx, 0, 5*time.Second)
	}()
	time.Sleep(20 * time.Millisecond)
	if _, err := fx.auth.Add(cluster.Member{ID: "a", Endpoints: []string{"127.0.0.1:1"}, Weight: 1}); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if gotErr != nil {
		t.Fatalf("parked Watch: %v", gotErr)
	}
	if got.Epoch != 1 || len(got.Members) != 1 {
		t.Fatalf("parked watch map = epoch %d, %d members", got.Epoch, len(got.Members))
	}
}

func TestShardVerbsForwardThroughOrbAdmin(t *testing.T) {
	fx := newShardFixture(t)
	ctx := context.Background()

	// The orb-admin servant of the authority's process forwards shard_*
	// verbs, so an admin client needs no second reference.
	adminRef := orb.ServeAdmin(fx.authORB)
	c := NewShardMapClient(newClientORB(t), adminRef)
	if _, err := c.Add(ctx, cluster.Member{ID: "via-admin", Endpoints: []string{"127.0.0.1:1"}, Weight: 1}); err != nil {
		t.Fatalf("Add via orb-admin: %v", err)
	}
	m, err := c.Fetch(ctx)
	if err != nil {
		t.Fatalf("Fetch via orb-admin: %v", err)
	}
	if _, ok := m.Member("via-admin"); !ok {
		t.Fatal("member added via orb-admin missing from fetched map")
	}

	// A process hosting no authority answers NO_IMPLEMENT.
	bare := orb.New()
	t.Cleanup(bare.Shutdown)
	if _, err := bare.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	bareRef := orb.ServeAdmin(bare)
	bc := NewShardMapClient(newClientORB(t), bareRef)
	if _, err := bc.Fetch(ctx); !orb.IsSystem(err, orb.CodeNoImplement) {
		t.Fatalf("Fetch on authority-less admin = %v, want NO_IMPLEMENT", err)
	}
}

func TestWrongShardEpoch(t *testing.T) {
	if _, ok := WrongShardEpoch(errors.New("nope")); ok {
		t.Fatal("parsed epoch from a plain error")
	}
	if _, ok := WrongShardEpoch(orb.Systemf(orb.CodeTransient, "epoch=9")); ok {
		t.Fatal("parsed epoch from a non-WrongShard system error")
	}
	err := wrongShard(42, "m1", "key")
	epoch, ok := WrongShardEpoch(err)
	if !ok || epoch != 42 {
		t.Fatalf("WrongShardEpoch = %d, %v", epoch, ok)
	}
	// Wrapped redirects still parse (clients see them through Invoke
	// wrappers).
	epoch, ok = WrongShardEpoch(errors.Join(errors.New("ctx"), err))
	if !ok || epoch != 42 {
		t.Fatalf("wrapped WrongShardEpoch = %d, %v", epoch, ok)
	}
}

func TestShardedBeginRoutesToOwner(t *testing.T) {
	fx := newShardFixture(t, "m1", "m2", "m3")
	ctx := context.Background()

	client := newClientORB(t)
	router := NewShardRouter(client, fx.authRef)

	const begins = 30
	for i := 0; i < begins; i++ {
		name := nameForIndex(i)
		proxy, err := router.BeginActivity(ctx, name)
		if err != nil {
			t.Fatalf("BeginActivity(%q): %v", name, err)
		}
		if _, err := proxy.Complete(ctx, core.CompletionSuccess); err != nil {
			t.Fatalf("Complete(%q): %v", name, err)
		}
	}

	// Every member only ever began names it owns, and together they
	// began all of them.
	m := router.Map()
	var total uint64
	for id, h := range fx.hosts {
		got := h.factory.Begins()
		var want uint64
		for i := 0; i < begins; i++ {
			if owner, ok := m.Owner(nameForIndex(i)); ok && owner.ID == id {
				want++
			}
		}
		if got != want {
			t.Errorf("member %s began %d activities, ring says %d", id, got, want)
		}
		total += got
	}
	if total != begins {
		t.Fatalf("fleet began %d activities, want %d", total, begins)
	}
	if st := router.Stats(); st.Redirects != 0 {
		t.Fatalf("stable map produced %d redirects", st.Redirects)
	}
}

func nameForIndex(i int) string {
	return "activity-" + string(rune('a'+i%26)) + "-" + string(rune('0'+i/26))
}

func TestShardRouterHealsOnWrongShard(t *testing.T) {
	fx := newShardFixture(t, "m1", "m2")
	ctx := context.Background()

	client := newClientORB(t)
	router := NewShardRouter(client, fx.authRef)
	if _, err := router.Refresh(ctx); err != nil {
		t.Fatal(err)
	}
	staleEpoch := router.Map().Epoch

	// Grow the fleet behind the router's back and let members catch up;
	// the router still holds the 2-member map.
	h3 := newShardHost(t, "m3", fx.authRef)
	fx.hosts["m3"] = h3
	if _, err := fx.auth.Add(h3.clusterMember("m3")); err != nil {
		t.Fatal(err)
	}
	for _, h := range fx.hosts {
		if err := h.member.Sync(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if router.Map().Epoch != staleEpoch {
		t.Fatal("router refreshed prematurely")
	}

	// Find a name the stale map routes to a member that no longer owns
	// it; the begin must still land exactly once, on the new owner.
	stale := router.Map()
	fresh := fx.auth.Current()
	var moved string
	for i := 0; i < 4096; i++ {
		name := nameForIndex(i)
		so, _ := stale.Owner(name)
		fo, _ := fresh.Owner(name)
		if so.ID != fo.ID {
			moved = name
			break
		}
	}
	if moved == "" {
		t.Fatal("no key moved when m3 joined")
	}

	proxy, err := router.BeginActivity(ctx, moved)
	if err != nil {
		t.Fatalf("BeginActivity through stale map: %v", err)
	}
	if _, err := proxy.Complete(ctx, core.CompletionSuccess); err != nil {
		t.Fatal(err)
	}
	st := router.Stats()
	if st.Redirects == 0 {
		t.Fatal("stale routing produced no WrongShard redirect")
	}
	if router.Map().Epoch <= staleEpoch {
		t.Fatalf("router map epoch %d did not advance past %d", router.Map().Epoch, staleEpoch)
	}
	var total uint64
	for _, h := range fx.hosts {
		total += h.factory.Begins()
	}
	if total != 1 {
		t.Fatalf("fleet began %d activities for one redirected begin, want exactly 1", total)
	}
	fo, _ := fresh.Owner(moved)
	if got := fx.hosts[fo.ID].factory.Begins(); got != 1 {
		t.Fatalf("new owner %s began %d, want 1", fo.ID, got)
	}
}

func TestDrainingMemberRedirectsAndQuiesces(t *testing.T) {
	fx := newShardFixture(t, "m1", "m2")
	ctx := context.Background()

	client := newClientORB(t)
	router := NewShardRouter(client, fx.authRef)
	if _, err := router.Refresh(ctx); err != nil {
		t.Fatal(err)
	}

	// Start an activity owned by m1 and keep it in flight.
	m := router.Map()
	var m1Name string
	for i := 0; i < 4096; i++ {
		if owner, ok := m.Owner(nameForIndex(i)); ok && owner.ID == "m1" {
			m1Name = nameForIndex(i)
			break
		}
	}
	if m1Name == "" {
		t.Fatal("m1 owns nothing")
	}
	inflight, err := router.BeginActivity(ctx, m1Name)
	if err != nil {
		t.Fatal(err)
	}

	// Drain m1 through the authority; its watch-less member syncs
	// explicitly here (Run covers the live path).
	if _, err := fx.auth.Drain("m1"); err != nil {
		t.Fatal(err)
	}
	if err := fx.hosts["m1"].member.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	if err := fx.hosts["m2"].member.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	if !fx.hosts["m1"].svc.Draining() {
		t.Fatal("OnDrain hook did not drain the core service")
	}

	// New begins for m1's old names heal over to m2 (the stale router
	// redirects through WrongShard).
	before2 := fx.hosts["m2"].factory.Begins()
	proxy, err := router.BeginActivity(ctx, m1Name)
	if err != nil {
		t.Fatalf("BeginActivity during drain: %v", err)
	}
	if _, err := proxy.Complete(ctx, core.CompletionSuccess); err != nil {
		t.Fatal(err)
	}
	if got := fx.hosts["m2"].factory.Begins(); got != before2+1 {
		t.Fatalf("m2 began %d (was %d): drained begin did not move", got, before2)
	}

	// The in-flight activity still completes on m1, and then m1
	// quiesces.
	qctx, cancel := context.WithTimeout(ctx, 100*time.Millisecond)
	err = fx.hosts["m1"].svc.WaitQuiesced(qctx)
	cancel()
	if err == nil {
		t.Fatal("m1 quiesced with an activity in flight")
	}
	if _, err := inflight.Complete(ctx, core.CompletionSuccess); err != nil {
		t.Fatalf("completing in-flight activity on draining member: %v", err)
	}
	qctx2, cancel2 := context.WithTimeout(ctx, 5*time.Second)
	defer cancel2()
	if err := fx.hosts["m1"].svc.WaitQuiesced(qctx2); err != nil {
		t.Fatalf("WaitQuiesced after drain completed: %v", err)
	}
}

func TestShardMemberRunFollowsMap(t *testing.T) {
	fx := newShardFixture(t, "m1")
	h := fx.hosts["m1"]
	go h.member.Run()

	if _, err := fx.auth.Drain("m1"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if h.svc.Draining() {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !h.svc.Draining() {
		t.Fatal("Run never observed the drain")
	}
	h.member.Stop()
}

func TestShardRouterResolveRetry(t *testing.T) {
	fx := newShardFixture(t, "m1")
	ctx := context.Background()

	// The router bootstraps with a dead authority reference; the
	// resolver hands it the live one.
	dead := orb.NewIOR(ShardMapTypeID, ShardMapKey, "127.0.0.1:1")
	var resolved int
	router := NewShardRouter(newClientORB(t), dead, WithAuthorityResolver(
		func(context.Context) (orb.IOR, error) {
			resolved++
			return fx.authRef, nil
		}))
	m, err := router.Refresh(ctx)
	if err != nil {
		t.Fatalf("Refresh through resolver: %v", err)
	}
	if resolved != 1 {
		t.Fatalf("resolver ran %d times, want 1", resolved)
	}
	if _, ok := m.Member("m1"); !ok {
		t.Fatal("resolved map missing m1")
	}
	// Subsequent refreshes use the resolved reference directly.
	if _, err := router.Refresh(ctx); err != nil {
		t.Fatal(err)
	}
	if resolved != 1 {
		t.Fatalf("resolver ran again (%d) with a healthy reference", resolved)
	}
}
