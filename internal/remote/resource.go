package remote

import (
	"context"
	"errors"
	"fmt"

	"github.com/extendedtx/activityservice/internal/cdr"
	"github.com/extendedtx/activityservice/internal/orb"
	"github.com/extendedtx/activityservice/internal/ots"
)

// ResourceTypeID is the interface id of exported transaction resources.
const ResourceTypeID = "IDL:CosTransactions/Resource:1.0"

// Phase-two reply outcome octets. CosTransactions models heuristic
// outcomes as exceptions; here they ride in the reply body (a transport
// error must keep meaning "delivery failed, outcome unknown", which is
// exactly what a heuristic reply is not). An empty reply body means clean,
// so pre-heuristic servants interoperate.
const (
	outcomeClean             = 0
	outcomeHeuristicCommit   = 1
	outcomeHeuristicRollback = 2
)

// encodePhaseTwoReply maps a servant's phase-two error to a reply: the
// heuristic sentinels become outcome octets (the delivery succeeded — the
// participant resolved, just unilaterally), anything else stays an error.
func encodePhaseTwoReply(err error) ([]byte, error) {
	var outcome byte
	switch {
	case err == nil:
		return nil, nil
	case errors.Is(err, ots.ErrHeuristicCommit):
		outcome = outcomeHeuristicCommit
	case errors.Is(err, ots.ErrHeuristicRollback):
		outcome = outcomeHeuristicRollback
	default:
		return nil, err
	}
	e := cdr.NewEncoder(4)
	e.WriteOctet(outcome)
	return e.Bytes(), nil
}

// decodePhaseTwoReply is the proxy-side inverse: an outcome octet becomes
// the matching heuristic sentinel so the coordinator's aggregation treats
// remote participants exactly like local ones. It returns only owned
// sentinel errors; nothing aliases the reply buffer.
func decodePhaseTwoReply(op string, body []byte) error {
	if len(body) == 0 {
		return nil
	}
	d := cdr.NewDecoder(body)
	outcome := d.ReadOctet()
	if err := d.Err(); err != nil {
		return orb.Systemf(orb.CodeMarshal, "%s reply: %v", op, err)
	}
	switch outcome {
	case outcomeClean:
		return nil
	case outcomeHeuristicCommit:
		return fmt.Errorf("remote: %s: %w", op, ots.ErrHeuristicCommit)
	case outcomeHeuristicRollback:
		return fmt.Errorf("remote: %s: %w", op, ots.ErrHeuristicRollback)
	default:
		return orb.Systemf(orb.CodeMarshal, "%s reply: unknown outcome %d", op, outcome)
	}
}

// resourceServant adapts an ots.Resource to the ORB, so a transaction
// coordinator on one node can drive two-phase commit over participants on
// other nodes — the distributed OTS deployment the paper's fig. 3 assumes.
type resourceServant struct {
	res ots.Resource
}

// Dispatch implements orb.Servant.
func (s *resourceServant) Dispatch(_ context.Context, op string, _ *cdr.Decoder) ([]byte, error) {
	switch op {
	case "prepare":
		vote, err := s.res.Prepare()
		if err != nil {
			return nil, err
		}
		e := cdr.NewEncoder(4)
		e.WriteOctet(byte(vote))
		return e.Bytes(), nil
	case "commit":
		return encodePhaseTwoReply(s.res.Commit())
	case "rollback":
		return encodePhaseTwoReply(s.res.Rollback())
	case "commit_one_phase":
		return encodePhaseTwoReply(s.res.CommitOnePhase())
	case "forget":
		return nil, s.res.Forget()
	default:
		return nil, orb.Systemf(orb.CodeBadOperation, "Resource has no operation %q", op)
	}
}

// ExportResource activates r on o and returns its reference.
func ExportResource(o *orb.ORB, r ots.Resource) orb.IOR {
	return o.RegisterServant(ResourceTypeID, &resourceServant{res: r})
}

// ExportResourceWithKey activates r under a stable key, so a restarted
// server can re-register the resource at the reference persisted in a
// coordinator's decision log.
func ExportResourceWithKey(o *orb.ORB, key string, r ots.Resource) orb.IOR {
	return o.RegisterServantWithKey(key, ResourceTypeID, &resourceServant{res: r})
}

// remoteResource is the coordinator-side proxy: an ots.Resource whose
// protocol methods are remote invocations. Its recovery name is the
// stringified IOR, so a logged commit decision can be re-driven against
// the same object after a coordinator restart (see BindRemoteResources).
type remoteResource struct {
	orb *orb.ORB
	ref orb.IOR
}

var _ ots.NamedResource = (*remoteResource)(nil)

// ImportResource returns an ots.Resource proxy for the resource at ref.
func ImportResource(o *orb.ORB, ref orb.IOR) ots.NamedResource {
	return &remoteResource{orb: o, ref: ref}
}

// RecoveryName implements ots.NamedResource.
func (r *remoteResource) RecoveryName() string { return r.ref.String() }

func (r *remoteResource) invoke(op string) ([]byte, error) {
	body, err := r.orb.Invoke(context.Background(), r.ref, op, nil)
	if err != nil {
		return nil, fmt.Errorf("remote: resource %s on %s: %w", op, r.ref.Key, err)
	}
	return body, nil
}

// Prepare implements ots.Resource.
func (r *remoteResource) Prepare() (ots.Vote, error) {
	body, err := r.invoke("prepare")
	if err != nil {
		return ots.VoteRollback, err
	}
	d := cdr.NewDecoder(body)
	vote := ots.Vote(d.ReadOctet())
	if err := d.Err(); err != nil {
		return ots.VoteRollback, orb.Systemf(orb.CodeMarshal, "prepare reply: %v", err)
	}
	return vote, nil
}

// Commit implements ots.Resource.
func (r *remoteResource) Commit() error {
	body, err := r.invoke("commit")
	if err != nil {
		return err
	}
	return decodePhaseTwoReply("commit", body)
}

// Rollback implements ots.Resource.
func (r *remoteResource) Rollback() error {
	body, err := r.invoke("rollback")
	if err != nil {
		return err
	}
	return decodePhaseTwoReply("rollback", body)
}

// CommitOnePhase implements ots.Resource.
func (r *remoteResource) CommitOnePhase() error {
	body, err := r.invoke("commit_one_phase")
	if err != nil {
		return err
	}
	return decodePhaseTwoReply("commit_one_phase", body)
}

// Forget implements ots.Resource.
func (r *remoteResource) Forget() error {
	_, err := r.invoke("forget")
	return err
}

// BindRemoteResources registers a directory resolver that turns the
// stringified-IOR recovery names written by remoteResource back into live
// proxies after a coordinator restart, so Service.Recover can re-drive
// phase two across the network.
func BindRemoteResources(o *orb.ORB, dir *ots.Directory, names []string) error {
	for _, name := range names {
		ref, err := orb.ParseIOR(name)
		if err != nil {
			return fmt.Errorf("remote: bind %q: %w", name, err)
		}
		dir.Register(name, ImportResource(o, ref))
	}
	return nil
}
