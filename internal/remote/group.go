package remote

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/extendedtx/activityservice/internal/cdr"
	"github.com/extendedtx/activityservice/internal/orb"
	"github.com/extendedtx/activityservice/internal/wal"
)

// Self-healing coordinator group: N members share one replicated WAL
// behind the wal-replication servant, exactly one of them leads, and the
// group survives any sequence of member deaths short of total loss
// without operator intervention.
//
// The moving parts:
//
//   - Every member serves the replication servant from birth — followers
//     answer repl_state (their stream position feeds elections) and
//     repl_claim (a candidate's leadership claim) even while they stream.
//   - Leadership is a durable term (wal.KindTerm) in the log itself; the
//     election is driven by the fetch-ack machinery: when a follower's
//     takeover budget declares the leader lost, it polls its peers'
//     repl_state and the best-positioned member — newest epoch first,
//     then highest durable LSN, member-ID tiebreak (lowest wins) —
//     claims the next term. The claim only confers leadership once a
//     majority of the configured electorate (this member plus cfg.Peers)
//     positively accepts it; unreachable peers cast no vote, so a
//     partitioned minority can never self-promote into a second
//     concurrent leader. Peers accept a claim only from a candidate
//     whose log subsumes their own — the decision gate held every
//     released decision until a quorum durably had it, and any two
//     quorums intersect, so the election cannot orphan a released
//     decision.
//   - A deposed leader is fenced, not corrupted: the claim (or any fetch
//     from a follower that out-terms it) fences its local append path, so
//     a decision racing phase two fails FENCED and unwinds to rollback.
//   - Re-join is automatic: a dead leader restarted on its old WAL
//     streams from the new leader, is answered replFenced with the exact
//     truncation bound (the first term start beyond its own), cuts its
//     unreplicated suffix crash-atomically, and demotes to a streaming
//     standby. No role flags change.
type GroupRole int32

// Group roles.
const (
	// RoleFollower streams the leader's WAL.
	RoleFollower GroupRole = iota
	// RoleLeader hosts the live coordinator state and serves appends.
	RoleLeader
)

// String implements fmt.Stringer.
func (r GroupRole) String() string {
	if r == RoleLeader {
		return "leader"
	}
	return "follower"
}

// errRepointed reports that a follower stream was cancelled because the
// member learned of a different leader (an accepted claim, a fenced-reply
// hint) and should re-aim, not elect.
var errRepointed = errors.New("remote: follower repointed to a new leader")

// GroupConfig configures one coordinator-group member.
type GroupConfig struct {
	// MemberID names this member; it keys ack watermarks, breaks election
	// ties (lowest wins) and names terms. Must be unique in the group.
	MemberID string
	// Peers are the replication endpoints of the other members. Together
	// with this member they define the electorate: winning an election
	// requires a majority of len(Peers)+1 positive claim acceptances
	// (counting this member's own vote), and the group decision gate
	// holds each commit until the same majority durably holds it.
	Peers []string
	// LeaderHint is where to start streaming from (typically the initial
	// primary). Empty means discover by polling peers.
	LeaderHint []string
	// Takeover activates the recovered coordinator state when this member
	// becomes leader: re-host OTS recovery, replay the activity journal,
	// re-register factories — whatever the deployment hosts. It runs after
	// the new term is durable. A nil Takeover only claims the term.
	Takeover func(ctx context.Context) error
	// OnDemote observes this member being deposed while leading (the new
	// term and leader ID). The log is already fenced when it runs.
	OnDemote func(term uint64, leaderID string)
	// Poll is the follower long-poll per fetch (default 2s).
	Poll time.Duration
	// Policy says when the follower declares the leader lost.
	Policy TakeoverPolicy
	// ElectionRetry is the pause between election rounds when deferring to
	// a better-positioned candidate or after a rejected claim (default
	// 50ms).
	ElectionRetry time.Duration
	// ProbeTimeout bounds each repl_state/repl_claim call during an
	// election round (default 1s).
	ProbeTimeout time.Duration
}

// GroupMember is one member of a self-healing coordinator group.
type GroupMember struct {
	o       *orb.ORB
	log     *wal.Log
	cfg     GroupConfig
	primary *ReplicationPrimary
	ref     orb.IOR

	mu           sync.Mutex
	role         GroupRole
	leaderID     string
	leaderEps    []string
	lastElection time.Time
	elections    uint64
	repoint      chan struct{} // closed and renewed when leadership knowledge changes
}

// NewGroupMember registers the group-aware replication servant for log on
// o and returns the member, initially a follower. Call Promote to boot it
// as the group's first leader, Run to stream/elect.
func NewGroupMember(o *orb.ORB, log *wal.Log, cfg GroupConfig) *GroupMember {
	if cfg.Poll <= 0 {
		cfg.Poll = 2 * time.Second
	}
	if cfg.Policy.Failures <= 0 {
		cfg.Policy.Failures = 3
	}
	if cfg.Policy.Retry <= 0 {
		cfg.Policy.Retry = 100 * time.Millisecond
	}
	if cfg.ElectionRetry <= 0 {
		cfg.ElectionRetry = 50 * time.Millisecond
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = time.Second
	}
	g := &GroupMember{
		o:         o,
		log:       log,
		cfg:       cfg,
		leaderEps: append([]string(nil), cfg.LeaderHint...),
		repoint:   make(chan struct{}),
	}
	g.primary, g.ref, _ = serveReplication(o, log, groupHooks{
		info:    g.info,
		claim:   g.handleClaim,
		deposed: g.noteDeposed,
	})
	return g
}

// Primary returns the member's replication handle (ack watermarks, the
// decision gate). It is live in every role; watermarks only advance while
// this member leads.
func (g *GroupMember) Primary() *ReplicationPrimary { return g.primary }

// Ref returns the member's replication servant reference.
func (g *GroupMember) Ref() orb.IOR { return g.ref }

// Role returns the member's current role.
func (g *GroupMember) Role() GroupRole {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.role
}

// Leader returns the group's current leader as this member knows it.
func (g *GroupMember) Leader() (id string, endpoints []string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.leaderID, append([]string(nil), g.leaderEps...)
}

// info feeds repl_state.
func (g *GroupMember) info() (string, bool, int64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	var at int64
	if !g.lastElection.IsZero() {
		at = g.lastElection.UnixMilli()
	}
	return g.cfg.MemberID, g.role == RoleLeader, at
}

// signalLocked wakes everything blocked on leadership knowledge. The
// caller must hold g.mu.
func (g *GroupMember) signalLocked() {
	close(g.repoint)
	g.repoint = make(chan struct{})
}

// handleClaim is the servant's claim hook: accept iff the term is new and
// the claimant's log subsumes ours — a newer epoch, or the same epoch and
// at least as long a log. A claimant still on an older epoch missed a
// checkpoint this log has folded in, so cross-epoch LSNs are not compared:
// the stale-epoch claim is rejected outright. Acceptance repoints this
// member to the claimant; a rejected claim answers FENCED so the stale
// candidate backs off.
func (g *GroupMember) handleClaim(term uint64, leaderID string, claimEpoch, claimLast uint64, endpoints []string) error {
	if known := g.log.KnownTerm(); term <= known {
		id, _ := g.Leader()
		return orb.Systemf(orb.CodeFenced, "term=%d leader=%s claim for stale term %d", known, id, term)
	}
	epoch, _ := g.log.State()
	if last := g.log.LastLSN(); claimEpoch < epoch || (claimEpoch == epoch && claimLast < last) {
		return orb.Systemf(orb.CodeFenced, "term=%d durable epoch %d lsn %d not subsumed by claimant epoch %d lsn %d",
			g.log.KnownTerm(), epoch, last, claimEpoch, claimLast)
	}
	g.log.Fence(term)
	g.mu.Lock()
	wasLeader := g.role == RoleLeader
	g.role = RoleFollower
	g.leaderID = leaderID
	g.leaderEps = append([]string(nil), endpoints...)
	g.signalLocked()
	g.mu.Unlock()
	if wasLeader && g.cfg.OnDemote != nil {
		g.cfg.OnDemote(term, leaderID)
	}
	return nil
}

// noteDeposed is the servant's fetch hook: a follower's term proved this
// member stale. The log is already fenced; drop the leader role and let
// Run discover the real leader.
func (g *GroupMember) noteDeposed(term uint64) {
	g.mu.Lock()
	wasLeader := g.role == RoleLeader
	g.role = RoleFollower
	g.leaderID = ""
	g.leaderEps = nil
	g.signalLocked()
	g.mu.Unlock()
	if wasLeader && g.cfg.OnDemote != nil {
		g.cfg.OnDemote(term, "")
	}
}

// noteFencedReply records a leader hint carried on a replFenced fetch
// reply.
func (g *GroupMember) noteFencedReply(term uint64, leaderID string, endpoints []string) {
	if len(endpoints) == 0 {
		return
	}
	g.mu.Lock()
	g.leaderID = leaderID
	g.leaderEps = append([]string(nil), endpoints...)
	g.signalLocked()
	g.mu.Unlock()
}

// Promote makes this member the group's leader: it durably claims the
// next term and runs the Takeover callback. The group's first leader
// promotes at boot; election winners go through the same path.
func (g *GroupMember) Promote(ctx context.Context) error {
	return g.becomeLeader(ctx, g.log.KnownTerm()+1)
}

// becomeLeader claims term durably, flips the role and activates the
// hosted state.
func (g *GroupMember) becomeLeader(ctx context.Context, term uint64) error {
	if _, err := g.log.AdoptTerm(term, g.cfg.MemberID); err != nil {
		return fmt.Errorf("remote: claim term %d: %w", term, err)
	}
	g.mu.Lock()
	g.role = RoleLeader
	g.leaderID = g.cfg.MemberID
	g.leaderEps = append([]string(nil), g.o.Endpoints()...)
	g.lastElection = time.Now()
	g.elections++
	g.signalLocked()
	g.mu.Unlock()
	if g.cfg.Takeover != nil {
		if err := g.cfg.Takeover(ctx); err != nil {
			return fmt.Errorf("remote: takeover as term-%d leader: %w", term, err)
		}
	}
	return nil
}

// Run operates the member until ctx ends: stream the leader while a
// follower, hold the role while the leader, elect when the leader is
// lost. It returns nil on ctx cancellation and the takeover error if
// activating won leadership fails.
func (g *GroupMember) Run(ctx context.Context) error {
	for {
		if ctx.Err() != nil {
			return nil
		}
		if g.Role() == RoleLeader {
			g.mu.Lock()
			ch := g.repoint
			g.mu.Unlock()
			if g.Role() != RoleLeader {
				continue
			}
			select {
			case <-ctx.Done():
				return nil
			case <-ch:
			}
			continue
		}
		err := g.followOnce(ctx)
		switch {
		case ctx.Err() != nil:
			return nil
		case errors.Is(err, errRepointed):
			// loop: stream the new leader
		case errors.Is(err, ErrPrimaryLost):
			if err := g.elect(ctx); err != nil {
				return err
			}
		case err != nil:
			sleepCtx(ctx, g.cfg.ElectionRetry)
		}
	}
}

// followOnce streams the known leader until the stream ends: repointed
// (errRepointed), leader lost (ErrPrimaryLost), promoted by an election
// we ran meanwhile, or ctx done (nil).
func (g *GroupMember) followOnce(ctx context.Context) error {
	g.mu.Lock()
	eps := append([]string(nil), g.leaderEps...)
	repoint := g.repoint
	g.mu.Unlock()
	if len(eps) == 0 {
		return ErrPrimaryLost // nothing to follow; elect (which also discovers leaders)
	}
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	go func() {
		select {
		case <-repoint:
			cancel()
		case <-runCtx.Done():
		}
	}()
	f := NewReplicationFollower(g.o, ReplicationAt(eps...), g.log,
		WithFollowerID(g.cfg.MemberID),
		WithPollTimeout(g.cfg.Poll),
		WithTakeoverPolicy(g.cfg.Policy),
		WithFencedObserver(g.noteFencedReply))
	err := f.Run(runCtx)
	if err == nil && ctx.Err() == nil {
		return errRepointed
	}
	return err
}

// peerState is one peer's repl_state during an election round.
type peerState struct {
	endpoint string
	st       ReplState
}

// elect runs election rounds until this member wins, discovers a live
// leader, or ctx ends. One round: poll every peer's repl_state; follow
// any live leader with a term we do not beat; defer to any reachable
// candidate whose durable position beats ours — newer epoch first, then
// longer log within the same epoch, then smaller member ID — and
// otherwise claim max(term)+1. The claim confers leadership only once a
// majority of the electorate accepts it (claimFrom); a failed claim
// backs off and re-polls.
func (g *GroupMember) elect(ctx context.Context) error {
	g.mu.Lock()
	g.leaderID = ""
	g.leaderEps = nil
	g.mu.Unlock()
	for {
		if ctx.Err() != nil {
			return nil
		}
		// A claim may have arrived while we were polling: follow it.
		if id, eps := g.Leader(); id != "" && len(eps) > 0 {
			return nil
		}
		myEpoch, _ := g.log.State()
		myLast := g.log.LastLSN()
		myKnown := g.log.KnownTerm()
		peers := g.pollPeers(ctx)
		maxTerm := myKnown
		defer_ := false
		for _, p := range peers {
			if p.st.Term > maxTerm {
				maxTerm = p.st.Term
			}
			if p.st.IsLeader && p.st.Term >= myKnown {
				// A live leader exists; follow it.
				g.mu.Lock()
				g.leaderID = p.st.MemberID
				g.leaderEps = []string{p.endpoint}
				g.signalLocked()
				g.mu.Unlock()
				return nil
			}
			// Durability order is (epoch, LSN) lexicographic: a member on a
			// newer epoch has resynchronised past a checkpoint this one has
			// not seen, so its history subsumes ours regardless of raw LSNs;
			// LSNs order members only within one epoch.
			last := p.st.NextLSN - 1
			if p.st.Epoch > myEpoch ||
				(p.st.Epoch == myEpoch && (last > myLast || (last == myLast && p.st.MemberID < g.cfg.MemberID))) {
				defer_ = true
			}
		}
		if defer_ {
			// A better-positioned member exists; give its claim time to
			// arrive before re-polling.
			sleepCtx(ctx, g.cfg.ElectionRetry)
			continue
		}
		term := maxTerm + 1
		if g.claimFrom(ctx, peers, term, myLast) {
			return g.becomeLeader(ctx, term)
		}
		sleepCtx(ctx, g.cfg.ElectionRetry)
	}
}

// pollPeers fetches every peer's repl_state concurrently; unreachable
// peers are dropped — a dead member cannot vote and cannot be orphaned by
// an election it does not see (it rejoins through the fence instead).
func (g *GroupMember) pollPeers(ctx context.Context) []peerState {
	type res struct {
		ps peerState
		ok bool
	}
	out := make(chan res, len(g.cfg.Peers))
	for _, ep := range g.cfg.Peers {
		go func(ep string) {
			probeCtx, cancel := context.WithTimeout(ctx, g.cfg.ProbeTimeout)
			defer cancel()
			st, err := FetchReplState(probeCtx, g.o, ep)
			out <- res{peerState{endpoint: ep, st: st}, err == nil}
		}(ep)
	}
	var peers []peerState
	for range g.cfg.Peers {
		if r := <-out; r.ok {
			peers = append(peers, r.ps)
		}
	}
	sort.Slice(peers, func(i, j int) bool { return peers[i].st.MemberID < peers[j].st.MemberID })
	return peers
}

// claimFrom sends repl_claim to every reachable peer and counts positive
// acceptances. The claim succeeds only when a majority of the configured
// electorate accepts it: this member's own vote plus enough peer accepts
// to reach quorum. A FENCED rejection abandons the claim immediately
// (someone knows a higher term, a newer epoch, or a longer log). An
// unreachable or timed-out peer casts NO vote — counting silence as
// assent would let a partitioned minority member promote itself and
// split the group into two concurrent leaders appending different
// records at overlapping LSNs.
func (g *GroupMember) claimFrom(ctx context.Context, peers []peerState, term, myLast uint64) bool {
	epoch, _ := g.log.State()
	self := g.o.Endpoints()
	accepts := 1 // this member's own durable vote
	for _, p := range peers {
		probeCtx, cancel := context.WithTimeout(ctx, g.cfg.ProbeTimeout)
		e := cdr.NewEncoder(64)
		e.WriteUint64(term)
		e.WriteString(g.cfg.MemberID)
		e.WriteUint64(epoch)
		e.WriteUint64(myLast)
		e.WriteStringList(self)
		_, err := g.o.Invoke(probeCtx, ReplicationAt(p.endpoint), "repl_claim", e.Bytes())
		cancel()
		if orb.IsSystem(err, orb.CodeFenced) {
			return false
		}
		if err == nil {
			accepts++
		}
		// Peers that died between the poll and the claim simply do not
		// vote — they rejoin through the fence later.
	}
	return accepts >= g.quorum()
}

// quorum is the number of positive votes — including the candidate's own
// — a leadership claim needs: a majority of the configured electorate
// (this member plus cfg.Peers). Any two majorities intersect, so a
// partition can elect at most one leader, and the decision gate's ack
// quorum (quorum()-1 followers plus the leader itself) guarantees every
// election majority contains at least one member whose log holds every
// released decision — whose longer log then fences out any claimant
// missing one.
func (g *GroupMember) quorum() int {
	return (len(g.cfg.Peers)+1)/2 + 1
}

// DecisionGate returns the group-aware commit gate for this member's
// leadership (ots.WithDecisionGate): phase two of a commit is released
// only once a majority of the electorate durably holds the decision —
// the leader's own append plus quorum()-1 follower acks — and a fence
// raised at any point vetoes with FENCED. The gate blocks rather than
// degrades when acks are missing; interval is how often the blocked
// gate re-checks the fence, not a degrade deadline.
func (g *GroupMember) DecisionGate(interval time.Duration) func(lsn uint64) error {
	return g.primary.DecisionGateN(g.quorum()-1, interval)
}

// Scrape reports the member's group state for the orb-admin surface.
func (g *GroupMember) Scrape() orb.ReplicationScrape {
	g.mu.Lock()
	role := g.role
	leaderID := g.leaderID
	lastElection := int64(0)
	if !g.lastElection.IsZero() {
		lastElection = g.lastElection.UnixMilli()
	}
	elections := g.elections
	g.mu.Unlock()
	ts := g.log.TermState()
	last := g.log.LastLSN()
	sc := orb.ReplicationScrape{
		MemberID:           g.cfg.MemberID,
		Role:               role.String(),
		Term:               ts.Term,
		TermLeader:         ts.Leader,
		LeaderID:           leaderID,
		LastLSN:            last,
		Fenced:             ts.Fenced,
		LastElectionMillis: lastElection,
		Elections:          elections,
	}
	if role == RoleLeader {
		for id, acked := range g.primary.FollowerAcks() {
			lag := uint64(0)
			if last > acked {
				lag = last - acked
			}
			sc.Followers = append(sc.Followers, orb.FollowerLag{ID: id, Acked: acked, Lag: lag})
		}
		sort.Slice(sc.Followers, func(i, j int) bool { return sc.Followers[i].ID < sc.Followers[j].ID })
	}
	return sc
}

// InstallAdminScrape wires this member's group state into o's orb-admin
// servant (the "replication_stats" verb).
func (g *GroupMember) InstallAdminScrape() {
	g.o.SetReplicationStatsProvider(func() (orb.ReplicationScrape, bool) {
		return g.Scrape(), true
	})
}

// ReplState is a decoded repl_state reply: the peer's stream position and
// group identity.
type ReplState struct {
	// Epoch and NextLSN are the peer log's replication position.
	Epoch, NextLSN uint64
	// Acked is the most advanced watermark a follower acknowledged to the
	// peer (meaningful while it leads).
	Acked uint64
	// Term and TermStart mirror the peer's durable term state.
	Term, TermStart uint64
	// TermLeader is the member that claimed the peer's term.
	TermLeader string
	// MemberID is the peer's group identity ("" for a plain
	// ServeReplication primary).
	MemberID string
	// IsLeader reports whether the peer currently leads its group.
	IsLeader bool
	// LastElectionMillis is when the peer last won an election (Unix
	// milliseconds, 0 for never).
	LastElectionMillis int64
}

// FetchReplState polls the replication servant at endpoint for its stream
// position and group identity.
func FetchReplState(ctx context.Context, o *orb.ORB, endpoint string) (ReplState, error) {
	body, err := o.Invoke(ctx, ReplicationAt(endpoint), "repl_state", nil)
	if err != nil {
		return ReplState{}, fmt.Errorf("repl_state: %w", err)
	}
	d := cdr.NewDecoder(body)
	st := ReplState{
		Epoch:   d.ReadUint64(),
		NextLSN: d.ReadUint64(),
		Acked:   d.ReadUint64(),
	}
	if d.Err() == nil && d.Remaining() > 0 {
		st.Term = d.ReadUint64()
		st.TermStart = d.ReadUint64()
		st.TermLeader = d.ReadString()
		st.MemberID = d.ReadString()
		st.IsLeader = d.ReadBool()
		st.LastElectionMillis = d.ReadInt64()
	}
	if err := d.Err(); err != nil {
		return ReplState{}, orb.Systemf(orb.CodeMarshal, "repl_state reply: %v", err)
	}
	return st, nil
}

// sleepCtx pauses for d or until ctx ends.
func sleepCtx(ctx context.Context, d time.Duration) {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-ctx.Done():
	case <-timer.C:
	}
}
