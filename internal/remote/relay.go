package remote

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/extendedtx/activityservice/internal/cdr"
	"github.com/extendedtx/activityservice/internal/core"
	"github.com/extendedtx/activityservice/internal/orb"
)

// Relay servant identity. Every node that participates in tree-structured
// fan-out hosts exactly one relay servant under the well-known RelayKey, so
// a relay is addressable knowing only the node's endpoints — the same way
// CORBA's standard object keys make per-host services discoverable.
const (
	// RelayTypeID is the interface id of the relay servant.
	RelayTypeID = "IDL:ActivityService/Relay:1.0"
	// RelayKey is the well-known object key the relay servant registers
	// under on every relay-capable node.
	RelayKey = "relay"
	// relayOp is the relay servant's only operation: deliver a signal to a
	// subtree batch and aggregate the outcomes.
	relayOp = "relay_deliver"
)

// Relay batch kinds: the first octet after the signal encoding says whether
// the frame carries the subtree membership inline or refers to one the
// relay already planted.
const (
	// relayBatchFull carries the membership blob inline; the relay caches
	// it under its plant id.
	relayBatchFull byte = 1
	// relayBatchRef carries only the plant id of a previously planted
	// membership. A relay that does not know the plant (restarted, evicted)
	// raises unknown-plant and the sender falls back to a full batch.
	relayBatchRef byte = 2
)

// maxRelayDepth bounds membership-tree recursion against hostile frames.
const maxRelayDepth = 32

// relayPlantCacheCap bounds the number of memberships a relay keeps.
// Eviction is LRU: a plant is refreshed every time a reference batch hits
// it, so the plants a live protocol reuses each round stay resident and
// only abandoned memberships age out. The cap must cover a busy interior
// site's working set — with the default planner one site can relay every
// interior subtree of a large tree (fanout/branching plants, ~512 at
// fanout 4096) — so it is sized well above that; it only guards against
// unbounded growth from departed coordinators.
const relayPlantCacheCap = 1024

// unknownPlantDetail is the detail text of the unknown-plant exception;
// senders match it to distinguish "resend full membership" from real
// failures.
const unknownPlantDetail = "unknown relay plant"

// relayNode is the wire form of one subtree vertex: the member's
// registration index (preserved end-to-end so collation stays in
// registration order), the Action servant's key and endpoints, and the
// child subtrees this member relays to.
//
// Aliasing contract: decodeRelayNode returns a fully owned tree — every
// string is copied off the stream by ReadString and no field aliases the
// frame buffer — so decoded nodes may be retained freely (the plant cache
// depends on this).
type relayNode struct {
	index     int
	key       string
	endpoints []string
	children  []*relayNode
}

// span appends every node of the subtree to dst in preorder.
func (n *relayNode) span(dst []*relayNode) []*relayNode {
	dst = append(dst, n)
	for _, c := range n.children {
		dst = c.span(dst)
	}
	return dst
}

// encodeRelayNode writes one subtree in wire form.
func encodeRelayNode(e *cdr.Encoder, n *relayNode) {
	e.WriteUint32(uint32(n.index))
	e.WriteString(n.key)
	e.WriteStringList(n.endpoints)
	e.WriteUint32(uint32(len(n.children)))
	for _, c := range n.children {
		encodeRelayNode(e, c)
	}
}

// decodeRelayNode reads one subtree, guarding depth and child counts
// against hostile input. The returned tree is an owned copy — every string
// is copied off the stream, nothing aliases the frame buffer.
func decodeRelayNode(d *cdr.Decoder, depth int) (*relayNode, error) {
	if depth > maxRelayDepth {
		return nil, fmt.Errorf("remote: relay membership deeper than %d", maxRelayDepth)
	}
	n := &relayNode{}
	n.index = int(d.ReadUint32())
	n.key = d.ReadString()
	n.endpoints = d.ReadStringList()
	count := d.ReadUint32()
	if err := d.Err(); err != nil {
		return nil, err
	}
	// Each child needs at least index+key+list+count on the wire; 8 bytes
	// is a safe floor that rejects absurd counts before allocating.
	if int(count) > d.Remaining()/8 {
		return nil, fmt.Errorf("remote: relay membership claims %d children with %d bytes left", count, d.Remaining())
	}
	for i := 0; i < int(count); i++ {
		c, err := decodeRelayNode(d, depth+1)
		if err != nil {
			return nil, err
		}
		n.children = append(n.children, c)
	}
	return n, nil
}

// relayBatch is a decoded relay_deliver request.
type relayBatch struct {
	sig     core.Signal
	kind    byte
	plantID string
	retry   core.RetryPolicy
	root    *relayNode // nil for relayBatchRef
}

// encodeRelayBatch writes one relay_deliver request body. The signal is
// encoded first, which puts Signal.Name in the body's first CDR string —
// the layout the chaos transport's Signal matcher relies on. membership is
// the standalone blob produced by encodeRelayNode at stream base; carrying
// it as an opaque octet sequence keeps its internal CDR alignment
// independent of where it lands in the outer frame, so its bytes — and
// therefore the plant id hashed from them — are stable across rounds.
func encodeRelayBatch(e *cdr.Encoder, sig core.Signal, kind byte, plantID string, retry core.RetryPolicy, membership []byte) error {
	if err := sig.Encode(e); err != nil {
		return err
	}
	e.WriteOctet(kind)
	e.WriteString(plantID)
	e.WriteUint32(uint32(retry.Attempts))
	e.WriteInt64(int64(retry.Backoff))
	if kind == relayBatchFull {
		e.WriteBytes(membership)
	}
	return nil
}

// decodeRelayBatch reads one relay_deliver request body. The returned
// batch owns all of its memory: the signal's strings are copies, the
// membership blob is re-decoded into an owned relayNode tree, and nothing
// aliases the frame buffer, so a batch may be retained past the dispatch
// that decoded it.
func decodeRelayBatch(d *cdr.Decoder) (relayBatch, error) {
	var b relayBatch
	sig, err := core.DecodeSignal(d)
	if err != nil {
		return relayBatch{}, err
	}
	b.sig = sig
	b.kind = d.ReadOctet()
	b.plantID = d.ReadString()
	b.retry.Attempts = int(d.ReadUint32())
	b.retry.Backoff = time.Duration(d.ReadInt64())
	if err := d.Err(); err != nil {
		return relayBatch{}, err
	}
	switch b.kind {
	case relayBatchRef:
		return b, nil
	case relayBatchFull:
	default:
		return relayBatch{}, fmt.Errorf("remote: relay batch kind %d", b.kind)
	}
	blob := d.ReadBytes() // lent; fully consumed by the nested decode below
	if err := d.Err(); err != nil {
		return relayBatch{}, err
	}
	var md cdr.Decoder
	md.Reset(blob)
	root, err := decodeRelayNode(&md, 0)
	if err != nil {
		return relayBatch{}, err
	}
	b.root = root
	return b, nil
}

// relayResult is one member's outcome in a relay_deliver reply.
type relayResult struct {
	index    int
	attempts int
	outcome  core.Outcome
	errText  string // "" on success
}

// encodeRelayResults writes the aggregated reply.
func encodeRelayResults(e *cdr.Encoder, results []relayResult) error {
	e.WriteUint32(uint32(len(results)))
	for _, r := range results {
		e.WriteUint32(uint32(r.index))
		e.WriteUint32(uint32(r.attempts))
		if r.errText == "" {
			e.WriteOctet(1)
			if err := r.outcome.Encode(e); err != nil {
				return err
			}
			continue
		}
		e.WriteOctet(0)
		e.WriteString(r.errText)
	}
	return nil
}

// decodeRelayResults reads an aggregated reply. Owned, like every decode
// in this file.
func decodeRelayResults(d *cdr.Decoder) ([]relayResult, error) {
	count := d.ReadUint32()
	if err := d.Err(); err != nil {
		return nil, err
	}
	// index+attempts+status is 9 bytes minimum per entry.
	if int(count) > d.Remaining()/9+1 {
		return nil, fmt.Errorf("remote: relay reply claims %d results with %d bytes left", count, d.Remaining())
	}
	results := make([]relayResult, 0, count)
	for i := 0; i < int(count); i++ {
		var r relayResult
		r.index = int(d.ReadUint32())
		r.attempts = int(d.ReadUint32())
		ok := d.ReadOctet()
		if err := d.Err(); err != nil {
			return nil, err
		}
		if ok != 0 {
			out, err := core.DecodeOutcome(d)
			if err != nil {
				return nil, err
			}
			r.outcome = out
		} else {
			r.errText = d.ReadString()
			if err := d.Err(); err != nil {
				return nil, err
			}
		}
		results = append(results, r)
	}
	return results, nil
}

// plantIDOf derives the plant id: the SHA-256 of the membership blob, so
// identical plans hash to identical ids no matter which coordinator sent
// them.
func plantIDOf(membership []byte) string {
	sum := sha256.Sum256(membership)
	return hex.EncodeToString(sum[:])
}

// relayServant hosts the relay_deliver operation: it delivers a signal to
// its own member, forwards sub-batches to child relays, re-adopts the span
// of any child that fails, and aggregates every member's outcome into one
// reply. It also keeps the plant cache that makes coordinator traffic
// sub-linear: a membership arrives once (full batch) and every later round
// references it by plant id.
type relayServant struct {
	o *orb.ORB

	// Plant-cache telemetry, exposed through the orb-admin "relay_stats"
	// scrape so operators can size relayPlantCacheCap: sustained
	// evictions paired with ref-batch misses mean live trees are being
	// pushed out and re-planted every round.
	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64

	mu     sync.Mutex
	plants map[string]*relayNode
	order  []string // LRU order, most recently used last
}

// ServeRelay activates the relay servant on o under RelayKey and returns
// its reference. Call it once per ORB that should act as an interior node
// of relay trees. The servant also wires its plant-cache telemetry into
// o's orb-admin scrape (the "relay_stats" operation).
func ServeRelay(o *orb.ORB) orb.IOR {
	s := &relayServant{
		o:      o,
		plants: make(map[string]*relayNode),
	}
	o.SetRelayStatsProvider(s.scrape)
	return o.RegisterServantWithKey(RelayKey, RelayTypeID, s)
}

// scrape snapshots the plant-cache telemetry for the orb-admin servant.
func (s *relayServant) scrape() (orb.RelayScrape, bool) {
	s.mu.Lock()
	n := len(s.plants)
	s.mu.Unlock()
	return orb.RelayScrape{
		Plants:    uint32(n),
		Capacity:  relayPlantCacheCap,
		Hits:      s.hits.Load(),
		Misses:    s.misses.Load(),
		Evictions: s.evictions.Load(),
	}, true
}

// plant stores a membership under its id, evicting least-recently-used
// plants past the cap.
func (s *relayServant) plant(id string, root *relayNode) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.plants[id]; ok {
		s.touch(id)
		return
	}
	for len(s.plants) >= relayPlantCacheCap {
		oldest := s.order[0]
		s.order = s.order[1:]
		delete(s.plants, oldest)
		s.evictions.Add(1)
	}
	s.plants[id] = root
	s.order = append(s.order, id)
}

// lookup returns a planted membership, refreshing its LRU position and
// counting the hit or miss.
func (s *relayServant) lookup(id string) (*relayNode, bool) {
	s.mu.Lock()
	root, ok := s.plants[id]
	if ok {
		s.touch(id)
	}
	s.mu.Unlock()
	if ok {
		s.hits.Add(1)
	} else {
		s.misses.Add(1)
	}
	return root, ok
}

// touch moves id to the most-recently-used end of the eviction order.
// Callers hold s.mu.
func (s *relayServant) touch(id string) {
	for i, v := range s.order {
		if v == id {
			s.order = append(append(s.order[:i], s.order[i+1:]...), id)
			return
		}
	}
}

// Dispatch implements orb.Servant.
func (s *relayServant) Dispatch(ctx context.Context, op string, in *cdr.Decoder) ([]byte, error) {
	if op != relayOp {
		return nil, orb.Systemf(orb.CodeBadOperation, "Relay has no operation %q", op)
	}
	batch, err := decodeRelayBatch(in)
	if err != nil {
		return nil, orb.Systemf(orb.CodeMarshal, "relay_deliver: %v", err)
	}
	root := batch.root
	if batch.kind == relayBatchRef {
		var ok bool
		if root, ok = s.lookup(batch.plantID); !ok {
			return nil, orb.Systemf(orb.CodeObjectNotExist, "%s %s", unknownPlantDetail, batch.plantID)
		}
	} else {
		s.plant(batch.plantID, root)
	}
	results := s.deliver(ctx, batch.sig, root, batch.retry)
	e := cdr.NewEncoder(64 * len(results))
	if err := encodeRelayResults(e, results); err != nil {
		return nil, orb.Systemf(orb.CodeMarshal, "encode relay results: %v", err)
	}
	return e.Bytes(), nil
}

// deliver fans one signal out over the subtree rooted at this relay: its
// own member and every child concurrently, child relays via sub-batches,
// leaves directly. A child relay that fails is re-adopted — its whole span
// is redelivered member-by-member from here — so subtree delivery stays at
// least once and idempotent actions absorb any duplicates the dead relay
// already managed.
func (s *relayServant) deliver(ctx context.Context, sig core.Signal, root *relayNode, retry core.RetryPolicy) []relayResult {
	se := cdr.NewEncoder(64)
	if err := sig.Encode(se); err != nil {
		all := root.span(nil)
		results := make([]relayResult, len(all))
		for i, n := range all {
			results[i] = relayResult{index: n.index, attempts: 1, errText: "encode signal: " + err.Error()}
		}
		return results
	}
	sigBytes := se.Bytes()

	var (
		mu  sync.Mutex
		out []relayResult
	)
	add := func(rs ...relayResult) {
		mu.Lock()
		out = append(out, rs...)
		mu.Unlock()
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		add(s.invokeMember(ctx, root, sigBytes, retry))
	}()
	for _, child := range root.children {
		wg.Add(1)
		go func(child *relayNode) {
			defer wg.Done()
			if len(child.children) == 0 {
				add(s.invokeMember(ctx, child, sigBytes, retry))
				return
			}
			add(s.forward(ctx, sig, child, sigBytes, retry)...)
		}(child)
	}
	wg.Wait()
	return out
}

// invokeMember delivers the signal to one member's Action servant with the
// batch's at-least-once retry loop, mirroring the coordinator's own
// runAttempts contract.
func (s *relayServant) invokeMember(ctx context.Context, n *relayNode, sigBytes []byte, retry core.RetryPolicy) relayResult {
	ref := orb.NewIOR(ActionTypeID, n.key, n.endpoints...)
	attempts := retry.Attempts
	if attempts < 1 {
		attempts = 1
	}
	r := relayResult{index: n.index}
	var lastErr error
	for attempt := 1; attempt <= attempts; attempt++ {
		r.attempts = attempt
		body, err := s.o.Invoke(ctx, ref, "process_signal", sigBytes)
		if err == nil {
			out, derr := core.DecodeOutcome(cdr.NewDecoder(body))
			if derr == nil {
				r.outcome = out
				return r
			}
			err = derr
		}
		lastErr = err
		if retry.Backoff > 0 && attempt < attempts {
			select {
			case <-ctx.Done():
				r.errText = errText(fmt.Errorf("relay delivery cancelled: %w", ctx.Err()))
				return r
			case <-time.After(retry.Backoff):
			}
		}
	}
	r.errText = errText(lastErr)
	return r
}

// forward sends the child subtree as a sub-batch to the child's relay
// servant — via sendRelayBatch, so repeated rounds travel as plant-id
// references — and returns its aggregated results, re-adopting any member
// the child failed to cover (or the whole span when the child relay itself
// is unreachable — the interior-relay-death case).
func (s *relayServant) forward(ctx context.Context, sig core.Signal, child *relayNode, sigBytes []byte, retry core.RetryPolicy) []relayResult {
	me := cdr.NewEncoder(256)
	encodeRelayNode(me, child)
	membership := me.Bytes()

	results, err := func() ([]relayResult, error) {
		ref := orb.NewIOR(RelayTypeID, RelayKey, child.endpoints...)
		body, err := sendRelayBatch(ctx, s.o, ref, sig, retry, membership, plantIDOf(membership))
		if err != nil {
			return nil, err
		}
		return decodeRelayResults(cdr.NewDecoder(body))
	}()
	if err != nil {
		// Child relay unreachable: re-adopt its entire span directly.
		results = nil
	}

	covered := make(map[int]bool, len(results))
	for _, r := range results {
		covered[r.index] = true
	}
	for _, n := range child.span(nil) {
		if covered[n.index] {
			continue
		}
		results = append(results, s.invokeMember(ctx, n, sigBytes, retry))
	}
	return results
}

// errText renders an error for the wire, never empty (CDR strings must be
// non-empty).
func errText(err error) string {
	if err == nil {
		return "delivery failed"
	}
	if s := err.Error(); s != "" {
		return s
	}
	return "delivery failed"
}

// relayAddressable is implemented by Action proxies that can be described
// to a relay on the wire: the servant key and endpoint list of the remote
// Action. Only trees whose every member is addressable can be delivered as
// batches; anything else falls back to direct delivery via the
// coordinator's re-adoption path.
type relayAddressable interface {
	relayAddress() (key string, endpoints []string)
}

// relayAddress implements relayAddressable for the Action proxy.
func (r *remoteAction) relayAddress() (string, []string) {
	endpoints := make([]string, len(r.ref.Profiles))
	for i, p := range r.ref.Profiles {
		endpoints[i] = p.Endpoint
	}
	return r.ref.Key, endpoints
}

// RelayInfo implements core.SubtreeDeliverer: the proxy's node identity is
// its primary endpoint, and its RTT is the client ORB's live EWMA for that
// endpoint (zero until measured, which the default planner treats as
// nearest).
func (r *remoteAction) RelayInfo() core.RelayInfo {
	ep := r.ref.Endpoint()
	return core.RelayInfo{Node: ep, RTT: r.orb.EndpointRTT(ep)}
}

// planted tracks which (relay endpoint, plant id) pairs this process has
// already delivered a full membership for, so later rounds can send the
// plant id alone. It is advisory: a relay that restarted or evicted the
// plant raises unknown-plant and the sender falls back to a full batch
// (and the entry is simply re-confirmed).
var (
	plantedMu sync.Mutex
	planted   = make(map[string]struct{})
)

// plantedKey keys the planted map by the relay's primary endpoint and the
// plant id.
func plantedKey(endpoint, plantID string) string {
	return endpoint + "\x00" + plantID
}

// wasPlanted reports whether a full membership was already sent.
func wasPlanted(endpoint, plantID string) bool {
	plantedMu.Lock()
	defer plantedMu.Unlock()
	_, ok := planted[plantedKey(endpoint, plantID)]
	return ok
}

// markPlanted records a successfully delivered full membership.
func markPlanted(endpoint, plantID string) {
	plantedMu.Lock()
	defer plantedMu.Unlock()
	if len(planted) >= 4096 { // advisory cache; reset rather than grow forever
		planted = make(map[string]struct{})
	}
	planted[plantedKey(endpoint, plantID)] = struct{}{}
}

// isUnknownPlant reports whether err is the relay's unknown-plant
// exception, the signal to resend the full membership.
func isUnknownPlant(err error) bool {
	return orb.IsSystem(err, orb.CodeObjectNotExist) && strings.Contains(err.Error(), unknownPlantDetail)
}

// DeliverSubtree implements core.SubtreeDeliverer: it ships the subtree
// rooted at this proxy to the member's relay servant as one batch and
// returns the aggregated per-member results. After the first round the
// membership travels as a plant-id reference — a constant-size frame — so
// the coordinator's bytes per round stay O(roots), not O(fanout).
func (r *remoteAction) DeliverSubtree(ctx context.Context, sig core.Signal, node *core.TreeNode, retry core.RetryPolicy) ([]core.SubtreeResult, error) {
	root, err := wireTree(node)
	if err != nil {
		return nil, err
	}
	me := cdr.NewEncoder(256)
	encodeRelayNode(me, root)
	membership := me.Bytes()
	plantID := plantIDOf(membership)
	target := orb.NewIOR(RelayTypeID, RelayKey, root.endpoints...)
	endpoint := target.Endpoint()

	body, err := sendRelayBatch(ctx, r.orb, target, sig, retry, membership, plantID)
	if err != nil {
		return nil, fmt.Errorf("remote: relay_deliver on %s: %w", endpoint, err)
	}

	raw, err := decodeRelayResults(cdr.NewDecoder(body))
	if err != nil {
		return nil, fmt.Errorf("remote: decode relay results: %w", err)
	}
	results := make([]core.SubtreeResult, 0, len(raw))
	for _, rr := range raw {
		sr := core.SubtreeResult{Index: rr.index, Attempts: rr.attempts, Outcome: rr.outcome}
		if rr.errText != "" {
			sr.Err = fmt.Errorf("remote: relay delivery: %s", rr.errText)
		}
		results = append(results, sr)
	}
	return results, nil
}

// sendRelayBatch delivers sig and the membership to the relay at target,
// as a constant-size plant-id reference when this process already planted
// the membership there, falling back to a full (re)plant when the relay
// does not know the id (restarted, evicted). Both coordinator-to-root and
// relay-to-relay hops go through here, so every edge of the tree pays the
// full membership once and a reference thereafter.
func sendRelayBatch(ctx context.Context, o *orb.ORB, target orb.IOR, sig core.Signal, retry core.RetryPolicy, membership []byte, plantID string) ([]byte, error) {
	endpoint := target.Endpoint()
	invoke := func(kind byte) ([]byte, error) {
		e := cdr.NewEncoder(len(membership) + 128)
		if err := encodeRelayBatch(e, sig, kind, plantID, retry, membership); err != nil {
			return nil, fmt.Errorf("remote: encode relay batch: %w", err)
		}
		return o.Invoke(ctx, target, relayOp, e.Bytes())
	}
	kind := relayBatchFull
	if wasPlanted(endpoint, plantID) {
		kind = relayBatchRef
	}
	body, err := invoke(kind)
	if err != nil && kind == relayBatchRef && isUnknownPlant(err) {
		body, err = invoke(relayBatchFull)
	}
	if err != nil {
		return nil, err
	}
	markPlanted(endpoint, plantID)
	return body, nil
}

// wireTree converts a planner tree into wire form, requiring every member
// to be a relay-addressable proxy. A member that is not (a local action, a
// wrapped proxy) fails the whole subtree, which the coordinator then
// re-adopts and delivers directly — correct, just flat.
func wireTree(node *core.TreeNode) (*relayNode, error) {
	ra, ok := node.Member.Action.(relayAddressable)
	if !ok {
		return nil, fmt.Errorf("remote: member %q (index %d) is not relay-addressable", node.Member.Label, node.Member.Index)
	}
	key, endpoints := ra.relayAddress()
	if len(endpoints) == 0 {
		return nil, fmt.Errorf("remote: member %q (index %d) has no endpoints", node.Member.Label, node.Member.Index)
	}
	n := &relayNode{index: node.Member.Index, key: key, endpoints: endpoints}
	for _, c := range node.Children {
		cn, err := wireTree(c)
		if err != nil {
			return nil, err
		}
		n.children = append(n.children, cn)
	}
	return n, nil
}
