package remote

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/extendedtx/activityservice/internal/cdr"
	"github.com/extendedtx/activityservice/internal/cluster"
	"github.com/extendedtx/activityservice/internal/orb"
)

// Shard-map servant identity: the authoritative cluster map is a
// first-class named object served beside the naming service, reachable
// through the well-known ShardMapKey the same way "naming" and
// "orb-admin" are.
const (
	// ShardMapTypeID is the interface id of the shard-map authority.
	ShardMapTypeID = "IDL:ActivityService/ShardMap:1.0"
	// ShardMapKey is the well-known object key the authority serves
	// under.
	ShardMapKey = "shard-map"
)

// shardWatchPollCap bounds one shard_watch long-poll round on the
// server, keeping every park shorter than common call timeouts; clients
// re-arm to watch longer.
const shardWatchPollCap = 10 * time.Second

// ShardAuthority holds the authoritative, versioned shard map of an
// activityd fleet. Mutations (Add, Drain, Remove) bump the epoch and
// wake long-poll watchers; ServeShardMap exposes the authority over the
// ORB and forwards the orb-admin servant's "shard_*" verbs to it, so
// operators drive live resharding through the admin surface they
// already scrape.
type ShardAuthority struct {
	mu      sync.Mutex
	cur     *cluster.Map
	changed chan struct{} // closed and replaced on every epoch bump
}

// NewShardAuthority returns an authority serving initial (the empty
// epoch-0 map when nil).
func NewShardAuthority(initial *cluster.Map) *ShardAuthority {
	if initial == nil {
		initial = cluster.EmptyMap()
	}
	return &ShardAuthority{cur: initial, changed: make(chan struct{})}
}

// Current returns the authority's map snapshot (immutable).
func (a *ShardAuthority) Current() *cluster.Map {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.cur
}

// mutate applies one map transition and wakes watchers.
func (a *ShardAuthority) mutate(f func(*cluster.Map) (*cluster.Map, error)) (uint64, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	next, err := f(a.cur)
	if err != nil {
		return 0, err
	}
	a.cur = next
	close(a.changed)
	a.changed = make(chan struct{})
	return next.Epoch, nil
}

// Add joins mem to the fleet as an active member and returns the new
// epoch.
func (a *ShardAuthority) Add(mem cluster.Member) (uint64, error) {
	return a.mutate(func(m *cluster.Map) (*cluster.Map, error) { return m.WithAdd(mem) })
}

// Drain marks the member draining — its arcs route to successors while
// it finishes in-flight activities — and returns the new epoch.
func (a *ShardAuthority) Drain(id string) (uint64, error) {
	return a.mutate(func(m *cluster.Map) (*cluster.Map, error) { return m.WithDrain(id) })
}

// Remove deletes the member from the fleet and returns the new epoch.
func (a *ShardAuthority) Remove(id string) (uint64, error) {
	return a.mutate(func(m *cluster.Map) (*cluster.Map, error) { return m.WithRemove(id) })
}

// await blocks until the map's epoch exceeds afterEpoch, one poll round
// (capped) passes, or ctx dies; it returns the then-current map.
func (a *ShardAuthority) await(ctx context.Context, afterEpoch uint64, poll time.Duration) *cluster.Map {
	if poll <= 0 || poll > shardWatchPollCap {
		poll = shardWatchPollCap
	}
	deadline := time.NewTimer(poll)
	defer deadline.Stop()
	for {
		a.mu.Lock()
		cur, changed := a.cur, a.changed
		a.mu.Unlock()
		if cur.Epoch > afterEpoch {
			return cur
		}
		select {
		case <-changed:
		case <-deadline.C:
			return cur
		case <-ctx.Done():
			return cur
		}
	}
}

// shardMapServant exposes a ShardAuthority over the ORB.
type shardMapServant struct {
	auth *ShardAuthority
}

// ServeShardMap activates the shard-map authority on o under the
// well-known ShardMapKey and wires its verbs into o's orb-admin servant
// (every "shard_*" admin operation forwards here). It returns the
// authority's reference.
func ServeShardMap(o *orb.ORB, auth *ShardAuthority) orb.IOR {
	s := &shardMapServant{auth: auth}
	o.SetShardAdminHandler(s.Dispatch)
	return o.RegisterServantWithKey(ShardMapKey, ShardMapTypeID, s)
}

// Dispatch implements orb.Servant.
func (s *shardMapServant) Dispatch(ctx context.Context, op string, in *cdr.Decoder) ([]byte, error) {
	switch op {
	case "shard_fetch":
		return encodeShardMap(s.auth.Current()), nil
	case "shard_watch":
		afterEpoch := in.ReadUint64()
		pollMillis := in.ReadUint32()
		if err := in.Err(); err != nil {
			return nil, orb.Systemf(orb.CodeMarshal, "shard_watch: %v", err)
		}
		m := s.auth.await(ctx, afterEpoch, time.Duration(pollMillis)*time.Millisecond)
		return encodeShardMap(m), nil
	case "shard_add":
		mem, err := decodeShardMember(in)
		if err != nil {
			return nil, orb.Systemf(orb.CodeMarshal, "shard_add: %v", err)
		}
		return s.reply(s.auth.Add(mem))
	case "shard_drain":
		id := in.ReadString()
		if err := in.Err(); err != nil {
			return nil, orb.Systemf(orb.CodeMarshal, "shard_drain: %v", err)
		}
		return s.reply(s.auth.Drain(id))
	case "shard_remove":
		id := in.ReadString()
		if err := in.Err(); err != nil {
			return nil, orb.Systemf(orb.CodeMarshal, "shard_remove: %v", err)
		}
		return s.reply(s.auth.Remove(id))
	default:
		return nil, orb.Systemf(orb.CodeBadOperation, "ShardMap has no operation %q", op)
	}
}

// reply encodes a mutation result (the new epoch).
func (s *shardMapServant) reply(epoch uint64, err error) ([]byte, error) {
	if err != nil {
		return nil, err // surfaces as RemoteError: the mutation was rejected
	}
	e := cdr.NewEncoder(16)
	e.WriteUint64(epoch)
	return e.Bytes(), nil
}

// encodeShardMap serializes m as a reply body.
func encodeShardMap(m *cluster.Map) []byte {
	e := cdr.NewEncoder(256)
	m.Encode(e)
	return e.Bytes()
}

// decodeShardMember reads the shard_add argument: a one-member map
// (reusing the map codec keeps the wire surface single-versioned). The
// returned member is an owned copy — nothing aliases the buffer.
func decodeShardMember(in *cdr.Decoder) (cluster.Member, error) {
	m, err := cluster.DecodeMap(in)
	if err != nil {
		return cluster.Member{}, err
	}
	if len(m.Members) != 1 {
		return cluster.Member{}, fmt.Errorf("shard_add carries %d members, want 1", len(m.Members))
	}
	return m.Members[0], nil
}

// encodeShardMember builds the shard_add argument for mem.
func encodeShardMember(mem cluster.Member) ([]byte, error) {
	one, err := cluster.NewMap(mem)
	if err != nil {
		return nil, err
	}
	return encodeShardMap(one), nil
}

// ShardMapAt builds the IOR of the well-known shard-map authority
// reachable at the given endpoints (profiles, in preference order).
func ShardMapAt(endpoints ...string) orb.IOR {
	return orb.NewIOR(ShardMapTypeID, ShardMapKey, endpoints...)
}

// ShardMapClient is the client-side proxy for a shard-map authority.
// The same verbs are also served by any orb-admin servant whose process
// hosts the authority (ServeShardMap wires the forwarding), so a client
// may aim this proxy at either the shard-map or the orb-admin
// reference.
type ShardMapClient struct {
	orb *orb.ORB
	ref orb.IOR
}

// NewShardMapClient returns a proxy invoking the shard-map verbs at ref
// through o.
func NewShardMapClient(o *orb.ORB, ref orb.IOR) *ShardMapClient {
	return &ShardMapClient{orb: o, ref: ref}
}

// Fetch retrieves the current shard map.
func (c *ShardMapClient) Fetch(ctx context.Context) (*cluster.Map, error) {
	body, err := c.orb.Invoke(ctx, c.ref, "shard_fetch", nil)
	if err != nil {
		return nil, fmt.Errorf("shard_fetch: %w", err)
	}
	m, err := cluster.DecodeMap(cdr.NewDecoder(body))
	if err != nil {
		return nil, orb.Systemf(orb.CodeMarshal, "shard_fetch reply: %v", err)
	}
	return m, nil
}

// Watch long-polls the authority: it returns as soon as the map's epoch
// exceeds afterEpoch, or with the unchanged map after one poll round
// (bounded by the server's cap). Callers loop around it.
func (c *ShardMapClient) Watch(ctx context.Context, afterEpoch uint64, poll time.Duration) (*cluster.Map, error) {
	e := cdr.NewEncoder(16)
	e.WriteUint64(afterEpoch)
	e.WriteUint32(uint32(poll / time.Millisecond))
	body, err := c.orb.Invoke(ctx, c.ref, "shard_watch", e.Bytes())
	if err != nil {
		return nil, fmt.Errorf("shard_watch: %w", err)
	}
	m, err := cluster.DecodeMap(cdr.NewDecoder(body))
	if err != nil {
		return nil, orb.Systemf(orb.CodeMarshal, "shard_watch reply: %v", err)
	}
	return m, nil
}

// Add joins mem to the fleet; it returns the new map epoch.
func (c *ShardMapClient) Add(ctx context.Context, mem cluster.Member) (uint64, error) {
	arg, err := encodeShardMember(mem)
	if err != nil {
		return 0, fmt.Errorf("shard_add: %w", err)
	}
	return c.epochVerb(ctx, "shard_add", arg)
}

// Drain marks the member draining; it returns the new map epoch.
func (c *ShardMapClient) Drain(ctx context.Context, id string) (uint64, error) {
	return c.epochVerb(ctx, "shard_drain", encodeStringArg(id))
}

// Remove deletes the member from the fleet; it returns the new map
// epoch.
func (c *ShardMapClient) Remove(ctx context.Context, id string) (uint64, error) {
	return c.epochVerb(ctx, "shard_remove", encodeStringArg(id))
}

func (c *ShardMapClient) epochVerb(ctx context.Context, op string, arg []byte) (uint64, error) {
	body, err := c.orb.Invoke(ctx, c.ref, op, arg)
	if err != nil {
		return 0, fmt.Errorf("%s: %w", op, err)
	}
	d := cdr.NewDecoder(body)
	epoch := d.ReadUint64()
	if err := d.Err(); err != nil {
		return 0, orb.Systemf(orb.CodeMarshal, "%s reply: %v", op, err)
	}
	return epoch, nil
}

func encodeStringArg(s string) []byte {
	e := cdr.NewEncoder(32)
	e.WriteString(s)
	return e.Bytes()
}

// wrongShard builds the WRONG_SHARD redirect a replica answers with
// when it receives a key it does not own: the detail leads with the
// replica's map epoch so stale clients know how far behind they are.
func wrongShard(epoch uint64, owner, key string) error {
	return orb.Systemf(orb.CodeWrongShard, "epoch=%d owner=%s key=%q", epoch, owner, key)
}

// WrongShardEpoch extracts the redirecting replica's map epoch from a
// WRONG_SHARD error (see orb.CodeWrongShard). ok is false when err is
// not a WrongShard redirect.
func WrongShardEpoch(err error) (uint64, bool) {
	var se *orb.SystemError
	if !errors.As(err, &se) || se.Code != orb.CodeWrongShard {
		return 0, false
	}
	detail, ok := strings.CutPrefix(se.Detail, "epoch=")
	if !ok {
		return 0, false
	}
	if i := strings.IndexByte(detail, ' '); i >= 0 {
		detail = detail[:i]
	}
	epoch, perr := strconv.ParseUint(detail, 10, 64)
	if perr != nil {
		return 0, false
	}
	return epoch, true
}
