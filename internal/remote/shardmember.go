package remote

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"github.com/extendedtx/activityservice/internal/cluster"
	"github.com/extendedtx/activityservice/internal/orb"
)

// ShardMember is the replica-side half of the sharding protocol: it
// tracks the cluster map (via the shard-map authority's watch verb) and
// guards keyed operations with CheckOwner, answering WrongShard for
// keys this member does not own under its current map. When the map
// marks this member draining, the member fires its OnDrain hook exactly
// once — the host wires that to core.Service.Drain so in-flight
// activities finish here while new begins redirect to the successors.
type ShardMember struct {
	o      *orb.ORB
	id     string
	client *ShardMapClient

	cur atomic.Pointer[cluster.Map]

	onDrain    func()
	drainFired sync.Once

	stop       chan struct{}
	stopOnce   sync.Once
	runStarted atomic.Bool
	done       chan struct{}
}

// MemberOption configures a ShardMember.
type MemberOption func(*ShardMember)

// WithOnDrain registers fn to run exactly once, the first time a
// synced map shows this member in the draining state.
func WithOnDrain(fn func()) MemberOption {
	return func(m *ShardMember) { m.onDrain = fn }
}

// NewShardMember returns the shard guard for the member with the given
// id, following maps from the shard-map authority at authorityRef.
func NewShardMember(o *orb.ORB, id string, authorityRef orb.IOR, opts ...MemberOption) *ShardMember {
	m := &ShardMember{
		o:      o,
		id:     id,
		client: NewShardMapClient(o, authorityRef),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	for _, opt := range opts {
		opt(m)
	}
	return m
}

// ID returns the member's fleet id.
func (m *ShardMember) ID() string { return m.id }

// Map returns the member's current view of the cluster map (nil before
// the first sync).
func (m *ShardMember) Map() *cluster.Map { return m.cur.Load() }

// install adopts a fetched map (never regressing the epoch) and fires
// the drain hook if the map shows this member draining.
func (m *ShardMember) install(next *cluster.Map) {
	for {
		cur := m.cur.Load()
		if cur != nil && next.Epoch <= cur.Epoch {
			break
		}
		if m.cur.CompareAndSwap(cur, next) {
			break
		}
	}
	if mem, ok := m.cur.Load().Member(m.id); ok && mem.State == cluster.MemberDraining {
		m.drainFired.Do(func() {
			if m.onDrain != nil {
				m.onDrain()
			}
		})
	}
}

// Sync fetches the current map once (e.g. at startup, before serving).
func (m *ShardMember) Sync(ctx context.Context) error {
	mp, err := m.client.Fetch(ctx)
	if err != nil {
		return err
	}
	m.install(mp)
	return nil
}

// Run follows the authority's map with long-poll watches until Stop.
// Watch errors back off briefly and retry; the member keeps serving on
// its last good map meanwhile.
func (m *ShardMember) Run() {
	m.runStarted.Store(true)
	defer close(m.done)
	for {
		select {
		case <-m.stop:
			return
		default:
		}
		var after uint64
		if cur := m.cur.Load(); cur != nil {
			after = cur.Epoch
		}
		ctx, cancel := context.WithTimeout(context.Background(), 2*shardWatchPollCap)
		go func() {
			// Stop aborts a parked watch instead of waiting out the poll.
			select {
			case <-m.stop:
				cancel()
			case <-ctx.Done():
			}
		}()
		mp, err := m.client.Watch(ctx, after, shardWatchPollCap)
		cancel()
		if err != nil {
			select {
			case <-m.stop:
				return
			case <-time.After(200 * time.Millisecond):
			}
			continue
		}
		m.install(mp)
	}
}

// Stop ends Run and waits for it to return (immediately when Run was
// never started).
func (m *ShardMember) Stop() {
	m.stopOnce.Do(func() { close(m.stop) })
	if m.runStarted.Load() {
		<-m.done
	}
}

// CheckOwner admits a keyed operation: nil when this member owns key
// under its current map and is not draining, a WrongShard redirect
// (carrying this member's epoch and the owner it routes to) otherwise.
// Before the first sync it answers TRANSIENT — the caller may retry
// once the member has a map.
func (m *ShardMember) CheckOwner(key string) error {
	cur := m.cur.Load()
	if cur == nil {
		return orb.Systemf(orb.CodeTransient, "shard member %s: no cluster map yet", m.id)
	}
	owner, ok := cur.Owner(key)
	if ok && owner.ID == m.id {
		return nil
	}
	ownerID := "<none>"
	if ok {
		ownerID = owner.ID
	}
	return wrongShard(cur.Epoch, ownerID, key)
}
