package remote

import (
	"errors"
	"sync"
	"testing"

	"github.com/extendedtx/activityservice/internal/orb"
	"github.com/extendedtx/activityservice/internal/ots"
	"github.com/extendedtx/activityservice/internal/wal"
)

// slotResource is a capacity-1 participant with observable state.
type slotResource struct {
	mu    sync.Mutex
	vote  ots.Vote
	state string
}

func (s *slotResource) set(v string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.state = v
}

func (s *slotResource) State() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}

func (s *slotResource) Prepare() (ots.Vote, error) {
	s.set("prepared")
	return s.vote, nil
}

func (s *slotResource) Commit() error         { s.set("committed"); return nil }
func (s *slotResource) Rollback() error       { s.set("rolledback"); return nil }
func (s *slotResource) CommitOnePhase() error { return s.Commit() }
func (s *slotResource) Forget() error         { return nil }

func TestDistributedOTSTwoPhaseCommit(t *testing.T) {
	coordinatorORB := orb.New()
	t.Cleanup(coordinatorORB.Shutdown)

	var resources []*slotResource
	var refs []orb.IOR
	for i := 0; i < 3; i++ {
		node := orb.New()
		t.Cleanup(node.Shutdown)
		r := &slotResource{vote: ots.VoteCommit}
		resources = append(resources, r)
		ref := ExportResource(node, r)
		if _, err := node.Listen("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		ref, _ = node.IOR(ref.Key)
		refs = append(refs, ref)
	}

	svc := ots.NewService()
	tx := svc.Begin()
	for _, ref := range refs {
		if err := tx.RegisterResource(ImportResource(coordinatorORB, ref)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(true); err != nil {
		t.Fatal(err)
	}
	for i, r := range resources {
		if r.State() != "committed" {
			t.Fatalf("resource %d state = %q", i, r.State())
		}
	}
}

func TestDistributedOTSVetoRollsBack(t *testing.T) {
	coordinatorORB := orb.New()
	t.Cleanup(coordinatorORB.Shutdown)
	node := orb.New()
	t.Cleanup(node.Shutdown)

	good := &slotResource{vote: ots.VoteCommit}
	veto := &slotResource{vote: ots.VoteRollback}
	goodRef := ExportResource(node, good)
	vetoRef := ExportResource(node, veto)
	if _, err := node.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	goodRef, _ = node.IOR(goodRef.Key)
	vetoRef, _ = node.IOR(vetoRef.Key)

	svc := ots.NewService()
	tx := svc.Begin()
	_ = tx.RegisterResource(ImportResource(coordinatorORB, goodRef))
	_ = tx.RegisterResource(ImportResource(coordinatorORB, vetoRef))
	if err := tx.Commit(true); !errors.Is(err, ots.ErrRolledBack) {
		t.Fatalf("err = %v", err)
	}
	if good.State() != "rolledback" {
		t.Fatalf("good state = %q", good.State())
	}
}

func TestRemoteResourceRecoveryNameIsIOR(t *testing.T) {
	node := orb.New()
	t.Cleanup(node.Shutdown)
	ref := ExportResource(node, &slotResource{vote: ots.VoteCommit})
	proxy := ImportResource(node, ref)
	parsed, err := orb.ParseIOR(proxy.RecoveryName())
	if err != nil {
		t.Fatal(err)
	}
	if !parsed.Equal(ref) {
		t.Fatalf("recovery name round trip: %+v != %+v", parsed, ref)
	}
}

func TestDistributedRecoveryRedeliversCommit(t *testing.T) {
	// Coordinator crash between decision and phase two, with the
	// participant on another node: after restart, BindRemoteResources
	// turns the logged IOR names back into proxies and Recover re-drives
	// commit over the network.
	participantORB := orb.New()
	t.Cleanup(participantORB.Shutdown)
	res := &slotResource{vote: ots.VoteCommit}
	// Stable key: the participant re-registers at the same reference after
	// its own restarts.
	ref := ExportResourceWithKey(participantORB, "slot-1", res)
	if _, err := participantORB.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	ref, _ = participantORB.IOR(ref.Key)

	log := wal.NewMemory()
	coordORB := orb.New()
	t.Cleanup(coordORB.Shutdown)
	svc := ots.NewService(ots.WithLog(log))
	tx := svc.Begin()
	_ = tx.RegisterResource(ImportResource(coordORB, ref))
	_ = tx.RegisterResource(ImportResource(coordORB, ref)) // two branches
	if err := tx.Commit(false); err != nil {
		t.Fatal(err)
	}

	// Crash image: decision only.
	recs, err := log.Records()
	if err != nil {
		t.Fatal(err)
	}
	crashLog := wal.NewMemory()
	if _, err := crashLog.Append(recs[0].Kind, recs[0].Data); err != nil {
		t.Fatal(err)
	}
	res.set("prepared") // phase two never happened from the new process' view

	dir := ots.NewDirectory()
	if err := BindRemoteResources(coordORB, dir, []string{ref.String()}); err != nil {
		t.Fatal(err)
	}
	svc2 := ots.NewService(ots.WithLog(crashLog), ots.WithDirectory(dir))
	stats, err := svc2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if stats.DecisionsReplayed != 1 || stats.ResourcesCommitted == 0 {
		t.Fatalf("stats = %+v", stats)
	}
	if res.State() != "committed" {
		t.Fatalf("state = %q after recovery", res.State())
	}
}

func TestBindRemoteResourcesRejectsGarbage(t *testing.T) {
	node := orb.New()
	t.Cleanup(node.Shutdown)
	dir := ots.NewDirectory()
	if err := BindRemoteResources(node, dir, []string{"not-an-ior"}); err == nil {
		t.Fatal("garbage name accepted")
	}
}
