package remote

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/extendedtx/activityservice/internal/cdr"
	"github.com/extendedtx/activityservice/internal/cluster"
	"github.com/extendedtx/activityservice/internal/orb"
)

// maxShardRedirects bounds how many WrongShard redirects one routed
// invocation will chase before giving up. Each redirect triggers a map
// refresh, so under a converging map two hops (stale → refreshed) is
// the common worst case; three tolerates one concurrent reshard during
// the retry.
const maxShardRedirects = 3

// RouterStats is a snapshot of a ShardRouter's routing counters.
type RouterStats struct {
	// Invokes counts routed invocations attempted through the router.
	Invokes uint64
	// Redirects counts WrongShard redirects received from replicas.
	Redirects uint64
	// Refreshes counts shard-map refetches (redirect- or miss-driven).
	Refreshes uint64
	// Prefetches counts map epochs the Run watch loop installed ahead of
	// any redirect.
	Prefetches uint64
}

// ShardRouter routes keyed invocations across an activityd fleet. It
// caches the cluster map by epoch, computes the owning member with the
// consistent-hash ring, aims the call at that member's endpoints, and
// self-heals on WrongShard redirects: a replica that no longer owns the
// key answers with its current epoch, the router refetches the map
// (falling back to re-resolving the authority reference when the cached
// one has gone stale too) and retries against the new owner. Safe for
// concurrent use.
type ShardRouter struct {
	o      *orb.ORB
	client *ShardMapClient

	// resolve re-discovers the authority reference (typically a naming
	// lookup). Optional: without it a dead cached authority ref is fatal.
	resolve func(ctx context.Context) (orb.IOR, error)

	cur atomic.Pointer[cluster.Map]

	// refreshMu single-flights map refreshes so a burst of redirected
	// invocations costs one fetch.
	refreshMu sync.Mutex

	invokes    atomic.Uint64
	redirects  atomic.Uint64
	refreshes  atomic.Uint64
	prefetches atomic.Uint64
}

// RouterOption configures a ShardRouter.
type RouterOption func(*ShardRouter)

// WithAuthorityResolver lets the router re-discover the shard-map
// authority (e.g. by resolving a naming entry) when invoking through
// its cached authority reference fails — the recovery path for a
// client whose bootstrap IOR outlived the process behind it.
func WithAuthorityResolver(resolve func(ctx context.Context) (orb.IOR, error)) RouterOption {
	return func(r *ShardRouter) { r.resolve = resolve }
}

// NewShardRouter returns a router fetching maps from the shard-map
// authority at authorityRef and invoking members through o.
func NewShardRouter(o *orb.ORB, authorityRef orb.IOR, opts ...RouterOption) *ShardRouter {
	r := &ShardRouter{o: o, client: NewShardMapClient(o, authorityRef)}
	for _, opt := range opts {
		opt(r)
	}
	return r
}

// Map returns the router's cached cluster map (nil before the first
// refresh).
func (r *ShardRouter) Map() *cluster.Map {
	return r.cur.Load()
}

// Stats returns a snapshot of the routing counters.
func (r *ShardRouter) Stats() RouterStats {
	return RouterStats{
		Invokes:    r.invokes.Load(),
		Redirects:  r.redirects.Load(),
		Refreshes:  r.refreshes.Load(),
		Prefetches: r.prefetches.Load(),
	}
}

// install adopts a fetched map without ever regressing the epoch (a
// racing refresh or watch may have installed a newer one). It reports
// whether the map actually advanced.
func (r *ShardRouter) install(next *cluster.Map) bool {
	for {
		cur := r.cur.Load()
		if cur != nil && next.Epoch <= cur.Epoch {
			return false
		}
		if r.cur.CompareAndSwap(cur, next) {
			return true
		}
	}
}

// Run follows the authority's map with shard_watch long-polls until ctx
// is cancelled, installing each new epoch into the router's cache as the
// change notification arrives: a watching router sees a reshard or drain
// as a map change, not as a WrongShard round trip, so keyed invocations
// aim at the new owner from the first attempt. Watch errors back off
// briefly and retry; routing keeps using the last good map meanwhile.
func (r *ShardRouter) Run(ctx context.Context) {
	for ctx.Err() == nil {
		var after uint64
		if cur := r.cur.Load(); cur != nil {
			after = cur.Epoch
		}
		// The client may be swapped by a concurrent authority re-resolve.
		r.refreshMu.Lock()
		c := r.client
		r.refreshMu.Unlock()
		wctx, cancel := context.WithTimeout(ctx, 2*shardWatchPollCap)
		m, err := c.Watch(wctx, after, shardWatchPollCap)
		cancel()
		if err != nil {
			select {
			case <-ctx.Done():
				return
			case <-time.After(200 * time.Millisecond):
			}
			continue
		}
		if r.install(m) {
			r.prefetches.Add(1)
		}
	}
}

// Refresh fetches the current map from the authority, re-resolving the
// authority reference if the cached one fails and a resolver is
// configured. Concurrent callers share one fetch.
func (r *ShardRouter) Refresh(ctx context.Context) (*cluster.Map, error) {
	before := r.cur.Load()
	r.refreshMu.Lock()
	defer r.refreshMu.Unlock()
	// A concurrent refresh may have already advanced the map while this
	// caller waited on the lock; don't fetch again.
	if cur := r.cur.Load(); cur != nil && (before == nil || cur.Epoch > before.Epoch) {
		return cur, nil
	}
	r.refreshes.Add(1)
	m, err := r.client.Fetch(ctx)
	if err != nil && r.resolve != nil {
		ref, rerr := r.resolve(ctx)
		if rerr != nil {
			return nil, fmt.Errorf("shard router: fetch failed (%v) and authority re-resolve failed: %w", err, rerr)
		}
		r.client = NewShardMapClient(r.o, ref)
		m, err = r.client.Fetch(ctx)
	}
	if err != nil {
		return nil, err
	}
	// Never regress: a racing refresh or watch may have installed a newer
	// epoch.
	r.install(m)
	return r.cur.Load(), nil
}

// snapshot returns the cached map, refreshing once if none is cached.
func (r *ShardRouter) snapshot(ctx context.Context) (*cluster.Map, error) {
	if m := r.cur.Load(); m != nil {
		return m, nil
	}
	return r.Refresh(ctx)
}

// RouteRef computes the reference a keyed invocation should target
// under the router's cached map: the well-known servant (typeID, key
// servantKey) on the member owning shard key routeKey. It does not
// touch the network when a map is cached.
func (r *ShardRouter) RouteRef(ctx context.Context, typeID, servantKey, routeKey string) (orb.IOR, cluster.Member, error) {
	m, err := r.snapshot(ctx)
	if err != nil {
		return orb.IOR{}, cluster.Member{}, err
	}
	owner, ok := m.Owner(routeKey)
	if !ok {
		return orb.IOR{}, cluster.Member{}, orb.Systemf(orb.CodeTransient,
			"shard router: map epoch %d has no active members", m.Epoch)
	}
	return orb.NewIOR(typeID, servantKey, owner.Endpoints...), owner, nil
}

// Invoke routes one invocation of op on the well-known servant
// (typeID, servantKey) to the member owning routeKey, healing through
// up to maxShardRedirects WrongShard redirects by refreshing the map
// and retrying against the new owner. WrongShard asserts the operation
// did not run, so the retry cannot double-execute.
func (r *ShardRouter) Invoke(ctx context.Context, typeID, servantKey, routeKey, op string, body []byte) ([]byte, error) {
	r.invokes.Add(1)
	var lastErr error
	for attempt := 0; attempt <= maxShardRedirects; attempt++ {
		ref, _, err := r.RouteRef(ctx, typeID, servantKey, routeKey)
		if err != nil {
			return nil, err
		}
		out, err := r.o.Invoke(ctx, ref, op, body)
		if err == nil {
			return out, nil
		}
		if _, redirected := WrongShardEpoch(err); !redirected {
			return nil, err
		}
		r.redirects.Add(1)
		lastErr = err
		if _, err := r.Refresh(ctx); err != nil {
			return nil, fmt.Errorf("shard router: redirected but refresh failed: %w", err)
		}
	}
	return nil, fmt.Errorf("shard router: key %q still redirected after %d map refreshes: %w",
		routeKey, maxShardRedirects, lastErr)
}

// BeginActivity begins an activity named name on the fleet member that
// owns the name under the current shard map, returning a proxy for the
// remote activity. The name is the shard key.
func (r *ShardRouter) BeginActivity(ctx context.Context, name string) (*ActivityProxy, error) {
	e := cdr.NewEncoder(32)
	e.WriteString(name)
	out, err := r.Invoke(ctx, ActivityFactoryTypeID, ActivityFactoryKey, name, "begin", e.Bytes())
	if err != nil {
		return nil, err
	}
	ref, err := decodeIORReply(out)
	if err != nil {
		return nil, err
	}
	return NewActivityProxy(r.o, ref), nil
}

// decodeIORReply reads a reply body holding one encoded IOR. The
// returned reference is an owned copy — nothing aliases the buffer.
func decodeIORReply(body []byte) (orb.IOR, error) {
	d := cdr.NewDecoder(body)
	ref := orb.DecodeIOR(d)
	if err := d.Err(); err != nil {
		return orb.IOR{}, orb.Systemf(orb.CodeMarshal, "reply IOR: %v", err)
	}
	return ref, nil
}
