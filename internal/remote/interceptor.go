package remote

import (
	"context"
	"fmt"

	"github.com/extendedtx/activityservice/internal/core"
	"github.com/extendedtx/activityservice/internal/orb"
)

// propagatedKey carries the decoded inbound activity context.
type propagatedKey struct{}

// InstallPropagation wires the implicit activity-context propagation onto
// o: outgoing requests made from within an activity carry the activity's
// PropagationContext in the ContextActivity service context, and inbound
// requests expose it through PropagatedFrom. This is the Activity Service's
// use of the ORB service-context mechanism (fig. 3).
func InstallPropagation(o *orb.ORB) {
	o.AddClientInterceptor(func(ctx context.Context, _ orb.IOR, _ string) ([]orb.ServiceContext, error) {
		a, ok := core.FromContext(ctx)
		if !ok {
			return nil, nil
		}
		pc, err := a.PropagationContext()
		if err != nil {
			return nil, fmt.Errorf("remote: build propagation context: %w", err)
		}
		data, err := pc.Marshal()
		if err != nil {
			return nil, fmt.Errorf("remote: marshal propagation context: %w", err)
		}
		return []orb.ServiceContext{{ID: orb.ContextActivity, Data: data}}, nil
	})
	o.AddServerInterceptor(func(ctx context.Context, contexts []orb.ServiceContext) (context.Context, error) {
		for _, sc := range contexts {
			if sc.ID != orb.ContextActivity {
				continue
			}
			pc, err := core.UnmarshalPropagationContext(sc.Data)
			if err != nil {
				return ctx, fmt.Errorf("remote: decode propagation context: %w", err)
			}
			return context.WithValue(ctx, propagatedKey{}, pc), nil
		}
		return ctx, nil
	})
}

// PropagatedFrom returns the inbound activity context attached by the
// server interceptor, if the request was made from within an activity.
func PropagatedFrom(ctx context.Context) (*core.PropagationContext, bool) {
	pc, _ := ctx.Value(propagatedKey{}).(*core.PropagationContext)
	return pc, pc != nil
}
