// Package remote bridges the Activity Service (internal/core) onto the ORB
// (internal/orb), letting extended transactions "span a network of systems
// connected indirectly by some distribution infrastructure" as the paper's
// abstract puts it.
//
// It provides: Action servants and proxies (a coordinator on one node
// signalling Actions on another), activity coordinator servants and proxies
// (remote registration and completion), and interceptors that propagate the
// activity context implicitly in a request's service context, mirroring how
// the CORBA Activity Service rides on the ORB's service-context mechanism.
//
// Every reference exported here (actions, coordinators, resources)
// inherits the ORB's multi-profile IORs: a host listening on several
// addresses hands out references that stay invocable — with transparent
// failover in the client ORB — while any one endpoint survives, which is
// what lets coordinated recovery keep converging while replicas move.
package remote

import (
	"context"
	"fmt"

	"github.com/extendedtx/activityservice/internal/cdr"
	"github.com/extendedtx/activityservice/internal/core"
	"github.com/extendedtx/activityservice/internal/orb"
)

// Interface type ids.
const (
	// ActionTypeID is the interface id of exported Actions.
	ActionTypeID = "IDL:ActivityService/Action:1.0"
	// CoordinatorTypeID is the interface id of exported activity
	// coordinators.
	CoordinatorTypeID = "IDL:ActivityService/ActivityCoordinator:1.0"
)

// actionServant adapts a core.Action to the ORB.
type actionServant struct {
	action core.Action
}

// Dispatch implements orb.Servant.
func (s *actionServant) Dispatch(ctx context.Context, op string, in *cdr.Decoder) ([]byte, error) {
	if op != "process_signal" {
		return nil, orb.Systemf(orb.CodeBadOperation, "Action has no operation %q", op)
	}
	sig, err := core.DecodeSignal(in)
	if err != nil {
		return nil, orb.Systemf(orb.CodeMarshal, "process_signal: %v", err)
	}
	out, err := s.action.ProcessSignal(ctx, sig)
	if err != nil {
		return nil, err // user errors surface as RemoteError at the caller
	}
	e := cdr.NewEncoder(64)
	if err := out.Encode(e); err != nil {
		return nil, orb.Systemf(orb.CodeMarshal, "encode outcome: %v", err)
	}
	return e.Bytes(), nil
}

// ExportAction activates action on o and returns its reference.
func ExportAction(o *orb.ORB, action core.Action) orb.IOR {
	return o.RegisterServant(ActionTypeID, &actionServant{action: action})
}

// ExportActionWithKey activates action under a stable key (for recovery).
func ExportActionWithKey(o *orb.ORB, key string, action core.Action) orb.IOR {
	return o.RegisterServantWithKey(key, ActionTypeID, &actionServant{action: action})
}

// remoteAction is the client-side proxy: a core.Action whose ProcessSignal
// is a remote invocation.
type remoteAction struct {
	orb *orb.ORB
	ref orb.IOR
}

// ImportAction returns a core.Action proxy for the Action at ref.
func ImportAction(o *orb.ORB, ref orb.IOR) core.Action {
	return &remoteAction{orb: o, ref: ref}
}

// ProcessSignal implements core.Action.
func (r *remoteAction) ProcessSignal(ctx context.Context, sig Signal) (core.Outcome, error) {
	e := cdr.NewEncoder(64)
	if err := sig.Encode(e); err != nil {
		return core.Outcome{}, fmt.Errorf("remote: encode signal: %w", err)
	}
	body, err := r.orb.Invoke(ctx, r.ref, "process_signal", e.Bytes())
	if err != nil {
		return core.Outcome{}, fmt.Errorf("remote: process_signal on %s: %w", r.ref.Key, err)
	}
	out, err := core.DecodeOutcome(cdr.NewDecoder(body))
	if err != nil {
		return core.Outcome{}, fmt.Errorf("remote: decode outcome: %w", err)
	}
	return out, nil
}

// Signal aliases core.Signal for the proxy signature.
type Signal = core.Signal
