package remote

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/extendedtx/activityservice/internal/orb"
	"github.com/extendedtx/activityservice/internal/ots"
	"github.com/extendedtx/activityservice/internal/wal"
)

// startPrimary serves replication for log on a listening ORB and returns
// the ORB, the primary handle and the ORB's endpoints.
func startPrimary(t *testing.T, log *wal.Log) (*orb.ORB, *ReplicationPrimary, []string) {
	t.Helper()
	primaryORB := orb.New()
	t.Cleanup(primaryORB.Shutdown)
	p, _ := ServeReplication(primaryORB, log)
	if _, err := primaryORB.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	return primaryORB, p, primaryORB.Endpoints()
}

// waitLSN blocks until the log's last LSN reaches want or the deadline.
func waitLSN(t *testing.T, l *wal.Log, want uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for l.LastLSN() < want {
		if time.Now().After(deadline) {
			t.Fatalf("log stuck at LSN %d, want %d", l.LastLSN(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestDecisionGateQuorumBlocksUntilAcks pins the gate's core safety
// property: a decision is NOT released until the requested number of
// distinct followers durably acked it — the gate blocks rather than
// degrading to asynchronous shipping on a slow standby.
func TestDecisionGateQuorumBlocksUntilAcks(t *testing.T) {
	log := wal.NewMemory()
	o := orb.New()
	t.Cleanup(o.Shutdown)
	p, _ := ServeReplication(o, log)
	lsn, err := log.Append(wal.Kind(7), []byte("decision"))
	if err != nil {
		t.Fatal(err)
	}
	gate := p.DecisionGateN(2, 20*time.Millisecond)
	done := make(chan error, 1)
	go func() { done <- gate(lsn) }()

	select {
	case err := <-done:
		t.Fatalf("gate released with zero acks: %v", err)
	case <-time.After(150 * time.Millisecond):
	}
	p.noteAck("f1", lsn)
	select {
	case err := <-done:
		t.Fatalf("gate released with one of two required acks: %v", err)
	case <-time.After(150 * time.Millisecond):
	}
	p.noteAck("f2", lsn)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("gate with quorum acks = %v, want release", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("gate never released after the quorum acked")
	}
}

// TestDecisionGateFenceVetoesWhileBlocked deposes the leader while its
// gate is parked waiting for acks that will never come: the gate must
// observe the fence on its next re-check and veto with FENCED instead of
// blocking forever (the vetoed decision is the orphan the rejoin
// truncation cuts).
func TestDecisionGateFenceVetoesWhileBlocked(t *testing.T) {
	log := wal.NewMemory()
	if _, err := log.AdoptTerm(1, "leader"); err != nil {
		t.Fatal(err)
	}
	o := orb.New()
	t.Cleanup(o.Shutdown)
	p, _ := ServeReplication(o, log)
	lsn, err := log.Append(wal.Kind(7), []byte("decision"))
	if err != nil {
		t.Fatal(err)
	}
	gate := p.DecisionGateN(1, 20*time.Millisecond)
	done := make(chan error, 1)
	go func() { done <- gate(lsn) }()

	time.Sleep(60 * time.Millisecond) // let the gate park on the missing ack
	log.Fence(2)
	select {
	case err := <-done:
		if !orb.IsSystem(err, orb.CodeFenced) {
			t.Fatalf("deposed gate = %v, want the FENCED system exception", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("blocked gate never observed the fence")
	}
}

func TestReplicationStreamsAndResyncs(t *testing.T) {
	primaryLog := wal.NewMemory()
	_, p, endpoints := startPrimary(t, primaryLog)

	followerORB := orb.New()
	t.Cleanup(followerORB.Shutdown)
	followerLog := wal.NewMemory()
	f := NewReplicationFollower(followerORB, ReplicationAt(endpoints...), followerLog,
		WithPollTimeout(200*time.Millisecond))

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- f.Run(ctx) }()

	// Incremental stream: appended records arrive with LSNs preserved.
	for i := 0; i < 3; i++ {
		if _, err := primaryLog.Append(wal.Kind(1), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	waitLSN(t, followerLog, 3)
	if !p.WaitForAck(3, 5*time.Second) {
		t.Fatalf("primary never saw ack for LSN 3 (acked %d)", p.Acked())
	}

	// A checkpoint compacts the primary (epoch bump): the follower must
	// resynchronise from a snapshot and adopt the new epoch.
	if err := primaryLog.Checkpoint(func(r wal.Record) bool { return r.LSN >= 3 }); err != nil {
		t.Fatal(err)
	}
	if _, err := primaryLog.Append(wal.Kind(2), []byte("post")); err != nil {
		t.Fatal(err)
	}
	waitLSN(t, followerLog, 4)
	deadline := time.Now().Add(5 * time.Second)
	for {
		fe, fn := followerLog.State()
		pe, pn := primaryLog.State()
		if fe == pe && fn == pn {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower state (%d,%d) never converged to primary (%d,%d)", fe, fn, pe, pn)
		}
		time.Sleep(time.Millisecond)
	}
	fRecs, err := followerLog.Records()
	if err != nil {
		t.Fatal(err)
	}
	pRecs, _ := primaryLog.Records()
	if len(fRecs) != len(pRecs) {
		t.Fatalf("follower has %d records, primary %d", len(fRecs), len(pRecs))
	}
	for i := range fRecs {
		if fRecs[i].LSN != pRecs[i].LSN || string(fRecs[i].Data) != string(pRecs[i].Data) {
			t.Fatalf("record %d diverged: follower %+v primary %+v", i, fRecs[i], pRecs[i])
		}
	}

	// Cancelling the context stops the follower cleanly.
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("Run returned %v after cancel, want nil", err)
	}
}

func TestReplicationDecisionBarrier(t *testing.T) {
	// Semi-synchronous replication: with the decision barrier installed,
	// Commit does not start phase two until the standby holds the decision
	// record — so a primary killed any time after the decision leaves a
	// standby that already knows the outcome.
	primaryLog := wal.NewMemory()
	_, p, endpoints := startPrimary(t, primaryLog)

	followerORB := orb.New()
	t.Cleanup(followerORB.Shutdown)
	followerLog := wal.NewMemory()
	f := NewReplicationFollower(followerORB, ReplicationAt(endpoints...), followerLog,
		WithPollTimeout(200*time.Millisecond))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() { _ = f.Run(ctx) }()

	var lagAtPhase2 []uint64 // follower's LSN observed as each commit is delivered
	var mu sync.Mutex
	svc := ots.NewService(
		ots.WithLog(primaryLog),
		ots.WithDecisionBarrier(p.DecisionBarrier(5*time.Second)),
		ots.WithEventHook(func(ev ots.Event) {
			if ev.Stage == ots.StageCommitDelivered {
				mu.Lock()
				lagAtPhase2 = append(lagAtPhase2, followerLog.LastLSN())
				mu.Unlock()
			}
		}),
	)
	tx := svc.Begin()
	r1, r2 := &slotResource{vote: ots.VoteCommit}, &slotResource{vote: ots.VoteCommit}
	_ = tx.RegisterResource(r1)
	_ = tx.RegisterResource(r2)
	if err := tx.Commit(true); err != nil {
		t.Fatal(err)
	}

	decisionLSN := uint64(1) // first record the service logged
	mu.Lock()
	defer mu.Unlock()
	if len(lagAtPhase2) != 2 {
		t.Fatalf("saw %d phase-two deliveries, want 2", len(lagAtPhase2))
	}
	for i, lsn := range lagAtPhase2 {
		if lsn < decisionLSN {
			t.Fatalf("delivery %d ran with follower at LSN %d, before the decision (%d) — barrier did not hold", i, lsn, decisionLSN)
		}
	}
	// The decision record itself must be on the standby, byte-identical.
	fRecs, err := followerLog.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(fRecs) == 0 || fRecs[0].Kind != ots.RecordDecision {
		t.Fatalf("follower log = %+v, want decision record first", fRecs)
	}
}

// countingResource counts phase-two deliveries for exactly-once checks.
type countingResource struct {
	slotResource
	commits   atomic.Int32
	rollbacks atomic.Int32
}

func (c *countingResource) Commit() error {
	c.commits.Add(1)
	return c.slotResource.Commit()
}

func (c *countingResource) Rollback() error {
	c.rollbacks.Add(1)
	return c.slotResource.Rollback()
}

func TestReplicationStandbyTakeover(t *testing.T) {
	// The tentpole scenario, in-process: a primary coordinator logs a
	// commit decision (replicated synchronously via the barrier), then dies
	// before delivering phase two. The standby detects the loss, hosts
	// recovery over its replica of the log, and converges every prepared
	// branch to the logged decision exactly once — the primary never comes
	// back.
	primaryLog := wal.NewMemory()
	primaryORB, p, endpoints := startPrimary(t, primaryLog)

	followerORB := orb.New()
	t.Cleanup(followerORB.Shutdown)
	followerLog := wal.NewMemory()
	f := NewReplicationFollower(followerORB, ReplicationAt(endpoints...), followerLog,
		WithPollTimeout(100*time.Millisecond),
		WithTakeoverPolicy(TakeoverPolicy{Failures: 3, Retry: 10 * time.Millisecond}))
	runErr := make(chan error, 1)
	go func() { runErr <- f.Run(context.Background()) }()

	// Two participants on their own nodes, registered over the wire so
	// their recovery names are stringified IORs the standby can re-bind.
	a, b := &countingResource{}, &countingResource{}
	a.vote, b.vote = ots.VoteCommit, ots.VoteCommit
	refA, refB := startParticipant(t, a), startParticipant(t, b)

	// The primary dies at the decision boundary: the event hook shuts the
	// ORB down after the decision is durable (and replicated — barrier)
	// but before any phase-two delivery can succeed.
	svc := ots.NewService(
		ots.WithLog(primaryLog),
		ots.WithDecisionBarrier(p.DecisionBarrier(5*time.Second)),
		ots.WithRetryPolicy(1, 0),
		ots.WithEventHook(func(ev ots.Event) {
			if ev.Stage == ots.StageDecisionLogged {
				primaryORB.Shutdown()
			}
		}),
	)
	tx := svc.Begin()
	_ = tx.RegisterResource(ImportResource(primaryORB, refA))
	_ = tx.RegisterResource(ImportResource(primaryORB, refB))
	if err := tx.Commit(true); err == nil {
		t.Fatal("commit succeeded although the coordinator died before phase two")
	}
	if a.State() != "prepared" || b.State() != "prepared" {
		t.Fatalf("participants = %s / %s, want prepared / prepared", a.State(), b.State())
	}

	// The follower notices the primary is gone.
	select {
	case err := <-runErr:
		if !errors.Is(err, ErrPrimaryLost) {
			t.Fatalf("follower Run = %v, want ErrPrimaryLost", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("follower never declared the primary lost")
	}

	// Takeover: host recovery over the replicated log on the standby's ORB.
	res, err := HostRecovery(followerORB, followerLog, ots.WithRetryPolicy(3, 10*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := followerORB.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if res.Stats.DecisionsReplayed != 1 || res.Stats.ResourcesCommitted != 2 {
		t.Fatalf("takeover recovery stats = %+v", res.Stats)
	}
	if a.State() != "committed" || b.State() != "committed" {
		t.Fatalf("participants = %s / %s, want committed", a.State(), b.State())
	}
	// Exactly once: one commit each, no rollbacks, even after another pass.
	if _, err := res.Service.Recover(); err != nil {
		t.Fatal(err)
	}
	if got := a.commits.Load(); got != 1 {
		t.Fatalf("participant a committed %d times", got)
	}
	if got := b.commits.Load(); got != 1 {
		t.Fatalf("participant b committed %d times", got)
	}
	if a.rollbacks.Load() != 0 || b.rollbacks.Load() != 0 {
		t.Fatal("participants saw rollbacks")
	}

	// A restarted participant converges through the standby via the same
	// multi-profile reference it held for the primary: the dead primary's
	// profile fails over to the standby's.
	clientORB := orb.New()
	t.Cleanup(clientORB.Shutdown)
	recoveryRef := RecoveryAt(append(endpoints, followerORB.Endpoints()...)...)
	rc := NewRecoveryClient(clientORB, recoveryRef)
	status, err := rc.ReplayCompletion(context.Background(), refA.String())
	if err != nil {
		t.Fatal(err)
	}
	if status != ots.StatusCommitted {
		t.Fatalf("replay_completion via standby = %s, want committed", status)
	}
}

// Bare host:port flag values (activityd -standby primary:7411) must dial
// the same as the tcp:-prefixed endpoints ORB.Endpoints reports; an
// unprefixed profile is silently undialable, which read as an instant
// "primary lost" takeover.
func TestReplicationAtNormalizesBareEndpoints(t *testing.T) {
	for _, ref := range []orb.IOR{
		ReplicationAt("127.0.0.1:7411", "tcp:127.0.0.1:7412"),
		RecoveryAt("127.0.0.1:7411", "tcp:127.0.0.1:7412"),
	} {
		if got := ref.Profiles[0].Endpoint; got != "tcp:127.0.0.1:7411" {
			t.Errorf("%s profile 0 = %q, want bare address normalized to %q", ref.Key, got, "tcp:127.0.0.1:7411")
		}
		if got := ref.Profiles[1].Endpoint; got != "tcp:127.0.0.1:7412" {
			t.Errorf("%s profile 1 = %q, want prefixed address unchanged", ref.Key, got)
		}
	}
}

func TestReplicationVerbsArePriorityClass(t *testing.T) {
	for _, verb := range []string{"repl_state", "repl_fetch", "repl_snapshot"} {
		found := false
		for _, op := range orb.DefaultPriorityOps {
			if op == verb {
				found = true
			}
		}
		if !found {
			t.Errorf("%s missing from orb.DefaultPriorityOps — replication would be shed under overload", verb)
		}
	}
}
