package remote

import (
	"context"
	"fmt"
	"strings"

	"github.com/extendedtx/activityservice/internal/cdr"
	"github.com/extendedtx/activityservice/internal/orb"
	"github.com/extendedtx/activityservice/internal/ots"
	"github.com/extendedtx/activityservice/internal/wal"
)

// Recovery servant identity. The servant serves under a well-known key
// (like orb-admin and naming) so a restarted participant can reconstruct
// the coordinator's recovery reference from an endpoint alone — after a
// crash, an endpoint may be all it still has.
const (
	// RecoveryTypeID is the interface id of the recovery servant, the
	// CosTransactions RecoveryCoordinator role hosted service-wide rather
	// than per transaction.
	RecoveryTypeID = "IDL:CosTransactions/RecoveryCoordinator:1.0"
	// RecoveryKey is the well-known object key the recovery servant serves
	// under.
	RecoveryKey = "ots-recovery"
)

// recoveryServant exposes a coordinator's ots.Service recovery surface
// over the ORB: replay_completion for restarted participants asking their
// outcome, and recover/totals for operational tooling driving or watching
// recovery. The completion and recovery verbs belong to the priority
// admission class (orb.DefaultPriorityOps), so they stay answerable under
// the overload that strands transactions in doubt in the first place.
type recoveryServant struct {
	svc *ots.Service
}

// ServeRecovery activates the recovery servant for svc on o under
// RecoveryKey and wires svc's recovery totals into o's orb-admin scrape.
// It returns the servant's reference; RecoveryAt rebuilds the same
// reference from endpoints alone.
func ServeRecovery(o *orb.ORB, svc *ots.Service) orb.IOR {
	o.SetRecoveryStatsProvider(func() (orb.RecoveryScrape, bool) {
		t := svc.RecoveryTotals()
		return orb.RecoveryScrape{
			Passes:             t.Passes,
			DecisionsReplayed:  t.DecisionsReplayed,
			ResourcesCommitted: t.ResourcesCommitted,
			ResourcesMissing:   t.ResourcesMissing,
			ResourcesFailed:    t.ResourcesFailed,
			HeuristicsRecorded: t.HeuristicsRecorded,
			PendingDecisions:   uint32(t.PendingDecisions),
			PendingHeuristics:  uint32(t.PendingHeuristics),
		}, true
	})
	return o.RegisterServantWithKey(RecoveryKey, RecoveryTypeID, &recoveryServant{svc: svc})
}

// Dispatch implements orb.Servant.
func (s *recoveryServant) Dispatch(_ context.Context, op string, in *cdr.Decoder) ([]byte, error) {
	switch op {
	case "replay_completion":
		name := in.ReadString()
		if err := in.Err(); err != nil {
			return nil, orb.Systemf(orb.CodeMarshal, "replay_completion: %v", err)
		}
		status, err := s.svc.ReplayCompletion(name)
		if err != nil {
			return nil, err
		}
		e := cdr.NewEncoder(4)
		e.WriteOctet(byte(status))
		return e.Bytes(), nil
	case "recover":
		stats, err := s.svc.Recover()
		if err != nil {
			return nil, err
		}
		e := cdr.NewEncoder(32)
		e.WriteUint32(uint32(stats.DecisionsReplayed))
		e.WriteUint32(uint32(stats.ResourcesCommitted))
		e.WriteUint32(uint32(stats.ResourcesMissing))
		e.WriteUint32(uint32(stats.ResourcesFailed))
		e.WriteUint32(uint32(stats.ResourcesHeuristic))
		return e.Bytes(), nil
	case "totals":
		t := s.svc.RecoveryTotals()
		e := cdr.NewEncoder(64)
		e.WriteUint64(t.Passes)
		e.WriteUint64(t.DecisionsReplayed)
		e.WriteUint64(t.ResourcesCommitted)
		e.WriteUint64(t.ResourcesMissing)
		e.WriteUint64(t.ResourcesFailed)
		e.WriteUint64(t.HeuristicsRecorded)
		e.WriteUint32(uint32(t.PendingDecisions))
		e.WriteUint32(uint32(t.PendingHeuristics))
		return e.Bytes(), nil
	default:
		return nil, orb.Systemf(orb.CodeBadOperation, "RecoveryCoordinator has no operation %q", op)
	}
}

// HostRecoveryResult reports what HostRecovery set up.
type HostRecoveryResult struct {
	// Service is the transaction service hosted over the log.
	Service *ots.Service
	// Stats is the outcome of the initial recovery pass.
	Stats ots.RecoveryStats
	// Ref is the activated recovery servant's reference.
	Ref orb.IOR
}

// HostRecovery hosts a transaction service over an already-open decision
// log on o: participants named by in-doubt commit decisions are re-bound
// as remote proxies, one recovery pass re-drives their phase two, and the
// well-known ots-recovery servant is activated so restarted participants
// can ask replay_completion for their outcome. Both a restarting
// coordinator (activityd with -ots-log) and a standby taking over a
// replicated log go through it — takeover is recovery over a log that
// arrived by replication instead of surviving a crash.
func HostRecovery(o *orb.ORB, log *wal.Log, extra ...ots.Option) (HostRecoveryResult, error) {
	dir := ots.NewDirectory()
	opts := append([]ots.Option{ots.WithLog(log), ots.WithDirectory(dir)}, extra...)
	svc := ots.NewService(opts...)
	names, err := svc.InDoubtResources()
	if err != nil {
		return HostRecoveryResult{}, err
	}
	// Only stringified-IOR names can be re-bound as remote proxies;
	// anything else must be re-registered by its own host.
	var remoteNames []string
	for _, n := range names {
		if _, err := orb.ParseIOR(n); err == nil {
			remoteNames = append(remoteNames, n)
		}
	}
	if err := BindRemoteResources(o, dir, remoteNames); err != nil {
		return HostRecoveryResult{}, err
	}
	stats, err := svc.Recover()
	if err != nil {
		return HostRecoveryResult{}, fmt.Errorf("recovery pass: %w", err)
	}
	ref := ServeRecovery(o, svc)
	return HostRecoveryResult{Service: svc, Stats: stats, Ref: ref}, nil
}

// RecoveryClient is the participant- and tooling-side proxy for a
// coordinator's recovery servant.
type RecoveryClient struct {
	orb *orb.ORB
	ref orb.IOR
}

// NewRecoveryClient returns a proxy invoking the recovery servant at ref
// through o.
func NewRecoveryClient(o *orb.ORB, ref orb.IOR) *RecoveryClient {
	return &RecoveryClient{orb: o, ref: ref}
}

// RecoveryAt builds the IOR of the well-known recovery servant reachable
// at the given endpoints (profiles, in preference order). Bare host:port
// addresses — flag values, config entries — are accepted alongside the
// "tcp:host:port" form ORB.Endpoints reports.
func RecoveryAt(endpoints ...string) orb.IOR {
	return orb.NewIOR(RecoveryTypeID, RecoveryKey, normalizeEndpoints(endpoints)...)
}

// normalizeEndpoints prefixes bare host:port addresses with the "tcp:"
// scheme the client dial path requires; endpoints already carrying it
// pass through unchanged. A profile without the scheme is silently
// undialable, which turns a typo'd -standby flag into an instant
// spurious "primary lost" — normalizing here makes flag values and
// ORB.Endpoints output interchangeable.
func normalizeEndpoints(endpoints []string) []string {
	out := make([]string, 0, len(endpoints))
	for _, ep := range endpoints {
		if ep != "" && !strings.HasPrefix(ep, "tcp:") {
			ep = "tcp:" + ep
		}
		out = append(out, ep)
	}
	return out
}

// ReplayCompletion asks the coordinator for the outcome of the
// transaction that prepared the named participant: StatusCommitted when a
// durable commit decision names it, StatusRolledBack otherwise (presumed
// abort). A restarted participant stuck in prepared calls this with its
// own recovery name — the stringified IOR its resource was exported under.
func (c *RecoveryClient) ReplayCompletion(ctx context.Context, resourceName string) (ots.Status, error) {
	e := cdr.NewEncoder(64)
	e.WriteString(resourceName)
	body, err := c.orb.Invoke(ctx, c.ref, "replay_completion", e.Bytes())
	if err != nil {
		return ots.StatusUnknown, fmt.Errorf("recovery replay_completion: %w", err)
	}
	d := cdr.NewDecoder(body)
	status := ots.Status(d.ReadOctet())
	if err := d.Err(); err != nil {
		return ots.StatusUnknown, orb.Systemf(orb.CodeMarshal, "replay_completion reply: %v", err)
	}
	return status, nil
}

// Recover asks the coordinator to run a recovery pass now and returns its
// stats. Operational tooling uses this to drive convergence on demand
// instead of waiting for the coordinator's own schedule.
func (c *RecoveryClient) Recover(ctx context.Context) (ots.RecoveryStats, error) {
	var stats ots.RecoveryStats
	body, err := c.orb.Invoke(ctx, c.ref, "recover", nil)
	if err != nil {
		return stats, fmt.Errorf("recovery recover: %w", err)
	}
	d := cdr.NewDecoder(body)
	stats.DecisionsReplayed = int(d.ReadUint32())
	stats.ResourcesCommitted = int(d.ReadUint32())
	stats.ResourcesMissing = int(d.ReadUint32())
	stats.ResourcesFailed = int(d.ReadUint32())
	stats.ResourcesHeuristic = int(d.ReadUint32())
	if err := d.Err(); err != nil {
		return ots.RecoveryStats{}, orb.Systemf(orb.CodeMarshal, "recover reply: %v", err)
	}
	return stats, nil
}

// Totals scrapes the coordinator's lifetime recovery totals and pending
// gauges (the same figures the orb-admin recovery_stats scrape reports).
func (c *RecoveryClient) Totals(ctx context.Context) (ots.RecoveryTotals, error) {
	var t ots.RecoveryTotals
	body, err := c.orb.Invoke(ctx, c.ref, "totals", nil)
	if err != nil {
		return t, fmt.Errorf("recovery totals: %w", err)
	}
	d := cdr.NewDecoder(body)
	t.Passes = d.ReadUint64()
	t.DecisionsReplayed = d.ReadUint64()
	t.ResourcesCommitted = d.ReadUint64()
	t.ResourcesMissing = d.ReadUint64()
	t.ResourcesFailed = d.ReadUint64()
	t.HeuristicsRecorded = d.ReadUint64()
	t.PendingDecisions = int(d.ReadUint32())
	t.PendingHeuristics = int(d.ReadUint32())
	if err := d.Err(); err != nil {
		return ots.RecoveryTotals{}, orb.Systemf(orb.CodeMarshal, "totals reply: %v", err)
	}
	return t, nil
}
