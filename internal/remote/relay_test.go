package remote

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/extendedtx/activityservice/internal/cdr"
	"github.com/extendedtx/activityservice/internal/core"
	"github.com/extendedtx/activityservice/internal/orb"
)

// sampleTree builds a three-level membership: root → two children, first
// child has two leaves.
func sampleTree() *relayNode {
	return &relayNode{
		index: 0, key: "a0", endpoints: []string{"tcp:h0:1"},
		children: []*relayNode{
			{
				index: 1, key: "a1", endpoints: []string{"tcp:h1:1", "tcp:h1:2"},
				children: []*relayNode{
					{index: 3, key: "a3", endpoints: []string{"tcp:h3:1"}},
					{index: 4, key: "a4", endpoints: []string{"tcp:h4:1"}},
				},
			},
			{index: 2, key: "a2", endpoints: []string{"tcp:h2:1"}},
		},
	}
}

func TestRelayBatchRoundTrip(t *testing.T) {
	root := sampleTree()
	me := cdr.NewEncoder(128)
	encodeRelayNode(me, root)
	membership := me.Bytes()
	plantID := plantIDOf(membership)

	sig := core.Signal{Name: "prepare", SetName: "2pc", Data: int64(7)}
	retry := core.RetryPolicy{Attempts: 3, Backoff: 5 * time.Millisecond}

	e := cdr.NewEncoder(256)
	if err := encodeRelayBatch(e, sig, relayBatchFull, plantID, retry, membership); err != nil {
		t.Fatal(err)
	}
	got, err := decodeRelayBatch(cdr.NewDecoder(e.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.sig != sig {
		t.Fatalf("signal = %+v, want %+v", got.sig, sig)
	}
	if got.kind != relayBatchFull || got.plantID != plantID || got.retry != retry {
		t.Fatalf("header = kind %d plant %q retry %+v", got.kind, got.plantID, got.retry)
	}
	assertTreeEqual(t, got.root, root)

	// Ref batches carry no membership and decode with a nil root.
	e2 := cdr.NewEncoder(64)
	if err := encodeRelayBatch(e2, sig, relayBatchRef, plantID, retry, nil); err != nil {
		t.Fatal(err)
	}
	ref, err := decodeRelayBatch(cdr.NewDecoder(e2.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if ref.root != nil || ref.plantID != plantID {
		t.Fatalf("ref batch = %+v", ref)
	}
	if len(e2.Bytes()) >= len(e.Bytes()) {
		t.Fatalf("ref batch (%d bytes) not smaller than full batch (%d bytes)", len(e2.Bytes()), len(e.Bytes()))
	}
}

func assertTreeEqual(t *testing.T, got, want *relayNode) {
	t.Helper()
	if got == nil || want == nil {
		if got != want {
			t.Fatalf("tree = %v, want %v", got, want)
		}
		return
	}
	if got.index != want.index || got.key != want.key {
		t.Fatalf("node = %+v, want %+v", got, want)
	}
	if len(got.endpoints) != len(want.endpoints) {
		t.Fatalf("endpoints = %v, want %v", got.endpoints, want.endpoints)
	}
	for i := range got.endpoints {
		if got.endpoints[i] != want.endpoints[i] {
			t.Fatalf("endpoints = %v, want %v", got.endpoints, want.endpoints)
		}
	}
	if len(got.children) != len(want.children) {
		t.Fatalf("children = %d, want %d", len(got.children), len(want.children))
	}
	for i := range got.children {
		assertTreeEqual(t, got.children[i], want.children[i])
	}
}

func TestRelayResultsRoundTrip(t *testing.T) {
	in := []relayResult{
		{index: 2, attempts: 1, outcome: core.Outcome{Name: "prepared", Data: "rw"}},
		{index: 5, attempts: 3, errText: "participant refused"},
	}
	e := cdr.NewEncoder(128)
	if err := encodeRelayResults(e, in); err != nil {
		t.Fatal(err)
	}
	out, err := decodeRelayResults(cdr.NewDecoder(e.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("decoded %d results, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("result %d = %+v, want %+v", i, out[i], in[i])
		}
	}
}

func TestRelayMembershipDepthAndCountGuards(t *testing.T) {
	// A membership deeper than maxRelayDepth must be rejected.
	deep := &relayNode{index: 0, key: "k", endpoints: []string{"tcp:h:1"}}
	n := deep
	for i := 1; i <= maxRelayDepth+1; i++ {
		c := &relayNode{index: i, key: "k", endpoints: []string{"tcp:h:1"}}
		n.children = []*relayNode{c}
		n = c
	}
	e := cdr.NewEncoder(1024)
	encodeRelayNode(e, deep)
	var d cdr.Decoder
	d.Reset(e.Bytes())
	if _, err := decodeRelayNode(&d, 0); err == nil || !strings.Contains(err.Error(), "deeper") {
		t.Fatalf("deep membership error = %v", err)
	}

	// A hostile child count far beyond the remaining bytes must be
	// rejected before allocation.
	h := cdr.NewEncoder(64)
	h.WriteUint32(0)
	h.WriteString("k")
	h.WriteStringList([]string{"tcp:h:1"})
	h.WriteUint32(1 << 30)
	d.Reset(h.Bytes())
	if _, err := decodeRelayNode(&d, 0); err == nil || !strings.Contains(err.Error(), "children") {
		t.Fatalf("hostile count error = %v", err)
	}
}

// relayFixture hosts participants and a relay servant on one in-process
// ORB and a sender on another.
type relayFixture struct {
	host   *orb.ORB
	sender *orb.ORB
}

func newRelayFixture(t *testing.T) *relayFixture {
	t.Helper()
	host := orb.New()
	t.Cleanup(host.Shutdown)
	sender := orb.New()
	t.Cleanup(sender.Shutdown)
	ServeRelay(host)
	return &relayFixture{host: host, sender: sender}
}

// exportCounting exports a participant that counts deliveries and acks
// with "ack:<signal>".
func (fx *relayFixture) exportCounting(counter *atomic.Int32) orb.IOR {
	ref := ExportAction(fx.host, core.ActionFunc(func(_ context.Context, sig core.Signal) (core.Outcome, error) {
		counter.Add(1)
		return core.Outcome{Name: "ack:" + sig.Name}, nil
	}))
	ref, _ = fx.host.IOR(ref.Key)
	return ref
}

func TestRelayServantDeliversSubtree(t *testing.T) {
	fx := newRelayFixture(t)
	ctx := context.Background()

	// Five participants on the host node, arranged root → {child(2 leaves), leaf}.
	var counts [5]atomic.Int32
	refs := make([]orb.IOR, 5)
	for i := range refs {
		refs[i] = fx.exportCounting(&counts[i])
	}
	node := func(i int, children ...*core.TreeNode) *core.TreeNode {
		return &core.TreeNode{
			Member:   core.TreeMember{Index: i, Label: "p", Action: ImportAction(fx.sender, refs[i])},
			Children: children,
		}
	}
	tree := node(0, node(1, node(3), node(4)), node(2))

	deliverer := ImportAction(fx.sender, refs[0]).(core.SubtreeDeliverer)
	results, err := deliverer.DeliverSubtree(ctx, core.Signal{Name: "go", SetName: "s"}, tree, core.RetryPolicy{Attempts: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 {
		t.Fatalf("got %d results, want 5", len(results))
	}
	seen := map[int]bool{}
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("member %d failed: %v", r.Index, r.Err)
		}
		if r.Outcome.Name != "ack:go" {
			t.Fatalf("member %d outcome = %q", r.Index, r.Outcome.Name)
		}
		seen[r.Index] = true
	}
	for i := 0; i < 5; i++ {
		if !seen[i] {
			t.Fatalf("no result for member %d", i)
		}
		if got := counts[i].Load(); got != 1 {
			t.Fatalf("member %d delivered %d times, want 1", i, got)
		}
	}
}

func TestRelayPlantCacheRefRoundTrips(t *testing.T) {
	fx := newRelayFixture(t)
	ctx := context.Background()

	var count atomic.Int32
	ref := fx.exportCounting(&count)
	tree := &core.TreeNode{Member: core.TreeMember{Index: 0, Action: ImportAction(fx.sender, ref)}}
	deliverer := ImportAction(fx.sender, ref).(core.SubtreeDeliverer)

	// First round plants the membership; later rounds ride the plant id.
	for round := 0; round < 3; round++ {
		results, err := deliverer.DeliverSubtree(ctx, core.Signal{Name: "r", SetName: "s"}, tree, core.RetryPolicy{Attempts: 1})
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if len(results) != 1 || results[0].Err != nil {
			t.Fatalf("round %d results = %+v", round, results)
		}
	}
	if got := count.Load(); got != 3 {
		t.Fatalf("delivered %d times, want 3", got)
	}
}

func TestRelayUnknownPlantFallsBackToFull(t *testing.T) {
	fx := newRelayFixture(t)
	ctx := context.Background()

	var count atomic.Int32
	ref := fx.exportCounting(&count)
	tree := &core.TreeNode{Member: core.TreeMember{Index: 0, Action: ImportAction(fx.sender, ref)}}
	deliverer := ImportAction(fx.sender, ref).(core.SubtreeDeliverer)

	// Forge the sender-side planted record so the first send is a ref the
	// relay has never seen: the sender must replant and still deliver.
	me := cdr.NewEncoder(128)
	root, err := wireTree(tree)
	if err != nil {
		t.Fatal(err)
	}
	encodeRelayNode(me, root)
	markPlanted(orb.NewIOR(RelayTypeID, RelayKey, root.endpoints...).Endpoint(), plantIDOf(me.Bytes()))

	results, err := deliverer.DeliverSubtree(ctx, core.Signal{Name: "r", SetName: "s"}, tree, core.RetryPolicy{Attempts: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].Err != nil {
		t.Fatalf("results = %+v", results)
	}
	if got := count.Load(); got != 1 {
		t.Fatalf("delivered %d times, want 1", got)
	}
}

func TestRelayReportsParticipantFailure(t *testing.T) {
	fx := newRelayFixture(t)
	ctx := context.Background()

	var good atomic.Int32
	okRef := fx.exportCounting(&good)
	badRef := ExportAction(fx.host, core.ActionFunc(func(context.Context, core.Signal) (core.Outcome, error) {
		return core.Outcome{}, errors.New("participant refused")
	}))
	badRef, _ = fx.host.IOR(badRef.Key)

	tree := &core.TreeNode{
		Member: core.TreeMember{Index: 0, Action: ImportAction(fx.sender, okRef)},
		Children: []*core.TreeNode{
			{Member: core.TreeMember{Index: 1, Action: ImportAction(fx.sender, badRef)}},
		},
	}
	deliverer := ImportAction(fx.sender, okRef).(core.SubtreeDeliverer)
	results, err := deliverer.DeliverSubtree(ctx, core.Signal{Name: "p", SetName: "s"}, tree, core.RetryPolicy{Attempts: 2})
	if err != nil {
		t.Fatal(err)
	}
	byIndex := map[int]core.SubtreeResult{}
	for _, r := range results {
		byIndex[r.Index] = r
	}
	if r := byIndex[0]; r.Err != nil || r.Outcome.Name != "ack:p" {
		t.Fatalf("member 0 = %+v", r)
	}
	r := byIndex[1]
	if r.Err == nil || !strings.Contains(r.Err.Error(), "participant refused") {
		t.Fatalf("member 1 err = %v", r.Err)
	}
	if r.Attempts != 2 {
		t.Fatalf("member 1 attempts = %d, want 2 (retry exhausted at the relay)", r.Attempts)
	}
}

// FuzzDecodeRelayBatch hardens the relay batch decoder against arbitrary
// frames: it must never panic, never allocate absurdly, and anything it
// accepts must re-encode and re-decode to the same header.
func FuzzDecodeRelayBatch(f *testing.F) {
	seed := func(sig core.Signal, kind byte, retry core.RetryPolicy, root *relayNode) {
		var membership []byte
		if root != nil {
			me := cdr.NewEncoder(128)
			encodeRelayNode(me, root)
			membership = me.Bytes()
		}
		e := cdr.NewEncoder(256)
		if err := encodeRelayBatch(e, sig, kind, plantIDOf(membership), retry, membership); err != nil {
			f.Fatal(err)
		}
		f.Add(cdr.Clone(e.Bytes()))
	}
	seed(core.Signal{Name: "prepare", SetName: "2pc"}, relayBatchFull, core.RetryPolicy{Attempts: 2}, sampleTree())
	seed(core.Signal{Name: "commit", SetName: "2pc", Data: "x"}, relayBatchRef, core.RetryPolicy{Attempts: 1, Backoff: time.Millisecond}, nil)
	seed(core.Signal{Name: "n", SetName: "s", Data: int64(-1)}, relayBatchFull, core.RetryPolicy{}, &relayNode{index: 0, key: "k", endpoints: []string{"inproc:x"}})
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x00, 0x00, 0x01, 0x00})

	f.Fuzz(func(t *testing.T, data []byte) {
		var d cdr.Decoder
		d.Reset(data)
		b, err := decodeRelayBatch(&d)
		if err != nil {
			return
		}
		// Accepted batches must round-trip: re-encode the decoded view and
		// decode it again to the same header and span.
		var membership []byte
		if b.root != nil {
			me := cdr.NewEncoder(128)
			encodeRelayNode(me, b.root)
			membership = me.Bytes()
		}
		e := cdr.NewEncoder(256)
		if err := encodeRelayBatch(e, b.sig, b.kind, b.plantID, b.retry, membership); err != nil {
			t.Fatalf("re-encode accepted batch: %v", err)
		}
		var d2 cdr.Decoder
		d2.Reset(e.Bytes())
		b2, err := decodeRelayBatch(&d2)
		if err != nil {
			t.Fatalf("re-decode accepted batch: %v", err)
		}
		if b2.sig.Name != b.sig.Name || b2.kind != b.kind || b2.plantID != b.plantID || b2.retry != b.retry {
			t.Fatalf("round-trip mismatch: %+v vs %+v", b2, b)
		}
		if (b.root == nil) != (b2.root == nil) {
			t.Fatalf("round-trip membership mismatch")
		}
		if b.root != nil && len(b.root.span(nil)) != len(b2.root.span(nil)) {
			t.Fatalf("round-trip span mismatch")
		}
	})
}

// TestRelayPlantCacheTelemetry pins the plant-cache counters the
// orb-admin "relay_stats" scrape exposes: ref-batch rounds count hits,
// a forged unknown ref counts a miss, and overflow past the cap counts
// evictions — all visible through an AdminClient scrape over the ORB.
func TestRelayPlantCacheTelemetry(t *testing.T) {
	fx := newRelayFixture(t)
	ctx := context.Background()
	orb.ServeAdmin(fx.host)

	var count atomic.Int32
	ref := fx.exportCounting(&count)
	tree := &core.TreeNode{Member: core.TreeMember{Index: 0, Action: ImportAction(fx.sender, ref)}}
	deliverer := ImportAction(fx.sender, ref).(core.SubtreeDeliverer)

	// Round 1 plants; rounds 2 and 3 ride the plant id (2 hits).
	for round := 0; round < 3; round++ {
		if _, err := deliverer.DeliverSubtree(ctx, core.Signal{Name: "r", SetName: "s"}, tree, core.RetryPolicy{Attempts: 1}); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}

	admin := orb.NewAdminClient(fx.sender, orb.AdminAt(fx.host.Endpoints()...))
	st, ok, err := admin.RelayStats(ctx)
	if err != nil || !ok {
		t.Fatalf("RelayStats: ok=%v err=%v", ok, err)
	}
	if st.Capacity != relayPlantCacheCap {
		t.Fatalf("scrape capacity %d, want %d", st.Capacity, relayPlantCacheCap)
	}
	if st.Plants != 1 || st.Hits != 2 || st.Misses != 0 {
		t.Fatalf("after 3 rounds: plants=%d hits=%d misses=%d, want 1/2/0", st.Plants, st.Hits, st.Misses)
	}

	// A forged sender-side plant record for a tree the relay has never
	// seen forces one unknown-ref miss (the sender replants and the
	// delivery still lands).
	var count2 atomic.Int32
	ref2 := fx.exportCounting(&count2)
	tree2 := &core.TreeNode{Member: core.TreeMember{Index: 0, Action: ImportAction(fx.sender, ref2)}}
	me := cdr.NewEncoder(128)
	root2, err := wireTree(tree2)
	if err != nil {
		t.Fatal(err)
	}
	encodeRelayNode(me, root2)
	markPlanted(orb.NewIOR(RelayTypeID, RelayKey, root2.endpoints...).Endpoint(), plantIDOf(me.Bytes()))
	if _, err := deliverer.DeliverSubtree(ctx, core.Signal{Name: "r2", SetName: "s"}, tree2, core.RetryPolicy{Attempts: 1}); err != nil {
		t.Fatal(err)
	}
	st, _, err = admin.RelayStats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Misses != 1 {
		t.Fatalf("misses = %d after unknown ref, want 1", st.Misses)
	}

	// Overflowing the cache counts evictions.
	s := &relayServant{o: fx.host, plants: make(map[string]*relayNode)}
	for i := 0; i < relayPlantCacheCap+5; i++ {
		s.plant(fmt.Sprintf("plant-%d", i), &relayNode{})
	}
	scrape, _ := s.scrape()
	if scrape.Evictions != 5 || scrape.Plants != relayPlantCacheCap {
		t.Fatalf("evictions=%d plants=%d, want 5/%d", scrape.Evictions, scrape.Plants, relayPlantCacheCap)
	}

	// An ORB with no relay reports ok=false, not an error.
	bare := orb.New()
	t.Cleanup(bare.Shutdown)
	orb.ServeAdmin(bare)
	if _, ok, err := orb.NewAdminClient(fx.sender, orb.AdminAt(bare.Endpoints()...)).RelayStats(ctx); err != nil || ok {
		t.Fatalf("bare ORB relay scrape: ok=%v err=%v, want false/nil", ok, err)
	}
}
