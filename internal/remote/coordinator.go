package remote

import (
	"context"
	"fmt"

	"github.com/extendedtx/activityservice/internal/cdr"
	"github.com/extendedtx/activityservice/internal/core"
	"github.com/extendedtx/activityservice/internal/orb"
)

// coordinatorServant exposes one activity's coordination surface:
// registering (remote) actions, broadcasting signal sets, and completion.
type coordinatorServant struct {
	orb      *orb.ORB
	activity *core.Activity
}

// ExportActivity activates a coordinator servant for a on o, returning the
// reference a remote party uses to join the activity.
func ExportActivity(o *orb.ORB, a *core.Activity) orb.IOR {
	return o.RegisterServantWithKey(
		"activity/"+a.ID().String(), CoordinatorTypeID,
		&coordinatorServant{orb: o, activity: a},
	)
}

// Dispatch implements orb.Servant.
func (s *coordinatorServant) Dispatch(ctx context.Context, op string, in *cdr.Decoder) ([]byte, error) {
	switch op {
	case "add_action":
		setName := in.ReadString()
		ref := orb.DecodeIOR(in)
		if err := in.Err(); err != nil {
			return nil, orb.Systemf(orb.CodeMarshal, "add_action: %v", err)
		}
		// The registered action is a proxy back to the caller's node.
		id, err := s.activity.AddNamedAction(setName, "remote:"+ref.Key, ImportAction(s.orb, ref))
		if err != nil {
			return nil, err
		}
		e := cdr.NewEncoder(32)
		e.WriteRaw(id[:])
		return e.Bytes(), nil
	case "signal":
		setName := in.ReadString()
		if err := in.Err(); err != nil {
			return nil, orb.Systemf(orb.CodeMarshal, "signal: %v", err)
		}
		out, err := s.activity.Signal(ctx, setName)
		if err != nil {
			return nil, err
		}
		return encodeOutcome(out)
	case "complete":
		status := core.CompletionStatus(in.ReadOctet())
		if err := in.Err(); err != nil {
			return nil, orb.Systemf(orb.CodeMarshal, "complete: %v", err)
		}
		out, err := s.activity.CompleteWithStatus(ctx, status)
		if err != nil {
			return nil, err
		}
		return encodeOutcome(out)
	case "status":
		e := cdr.NewEncoder(8)
		e.WriteOctet(byte(s.activity.State()))
		e.WriteOctet(byte(s.activity.CompletionStatus()))
		return e.Bytes(), nil
	default:
		return nil, orb.Systemf(orb.CodeBadOperation, "ActivityCoordinator has no operation %q", op)
	}
}

func encodeOutcome(out core.Outcome) ([]byte, error) {
	e := cdr.NewEncoder(64)
	if err := out.Encode(e); err != nil {
		return nil, orb.Systemf(orb.CodeMarshal, "encode outcome: %v", err)
	}
	return e.Bytes(), nil
}

// ActivityProxy is the client side of a remote activity coordinator.
type ActivityProxy struct {
	orb *orb.ORB
	ref orb.IOR
}

// NewActivityProxy returns a proxy for the coordinator at ref.
func NewActivityProxy(o *orb.ORB, ref orb.IOR) *ActivityProxy {
	return &ActivityProxy{orb: o, ref: ref}
}

// Ref returns the proxied reference.
func (p *ActivityProxy) Ref() orb.IOR { return p.ref }

// AddAction registers a local action with the remote activity: the action
// is exported on the local ORB and its reference enrolled remotely, so
// signals flow back across the wire — the enlistment pattern every
// distributed extended-transaction model needs.
func (p *ActivityProxy) AddAction(ctx context.Context, setName string, action core.Action) (orb.IOR, error) {
	ref := ExportAction(p.orb, action)
	e := cdr.NewEncoder(64)
	e.WriteString(setName)
	ref.Encode(e)
	if _, err := p.orb.Invoke(ctx, p.ref, "add_action", e.Bytes()); err != nil {
		return orb.IOR{}, fmt.Errorf("remote: add_action: %w", err)
	}
	return ref, nil
}

// Signal drives the named signal set on the remote activity.
func (p *ActivityProxy) Signal(ctx context.Context, setName string) (core.Outcome, error) {
	e := cdr.NewEncoder(32)
	e.WriteString(setName)
	body, err := p.orb.Invoke(ctx, p.ref, "signal", e.Bytes())
	if err != nil {
		return core.Outcome{}, fmt.Errorf("remote: signal %q: %w", setName, err)
	}
	return decodeOutcome(body)
}

// Complete completes the remote activity with the given status.
func (p *ActivityProxy) Complete(ctx context.Context, cs core.CompletionStatus) (core.Outcome, error) {
	e := cdr.NewEncoder(8)
	e.WriteOctet(byte(cs))
	body, err := p.orb.Invoke(ctx, p.ref, "complete", e.Bytes())
	if err != nil {
		return core.Outcome{}, fmt.Errorf("remote: complete: %w", err)
	}
	return decodeOutcome(body)
}

// Status reports the remote activity's lifecycle state and completion
// status.
func (p *ActivityProxy) Status(ctx context.Context) (core.ActivityState, core.CompletionStatus, error) {
	body, err := p.orb.Invoke(ctx, p.ref, "status", nil)
	if err != nil {
		return 0, 0, fmt.Errorf("remote: status: %w", err)
	}
	d := cdr.NewDecoder(body)
	st := core.ActivityState(d.ReadOctet())
	cs := core.CompletionStatus(d.ReadOctet())
	if err := d.Err(); err != nil {
		return 0, 0, orb.Systemf(orb.CodeMarshal, "status reply: %v", err)
	}
	return st, cs, nil
}

// decodeOutcome reads a reply body as a core.Outcome. The result is an
// owned copy: outcome strings and any-data are copied off the stream.
func decodeOutcome(body []byte) (core.Outcome, error) {
	out, err := core.DecodeOutcome(cdr.NewDecoder(body))
	if err != nil {
		return core.Outcome{}, fmt.Errorf("remote: decode outcome: %w", err)
	}
	return out, nil
}
