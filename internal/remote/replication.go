package remote

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/extendedtx/activityservice/internal/cdr"
	"github.com/extendedtx/activityservice/internal/orb"
	"github.com/extendedtx/activityservice/internal/wal"
)

// WAL replication over the ORB: the primary coordinator exposes its
// decision log as a well-known servant and a warm standby streams it into
// a follower wal.Log. The protocol is pull-based — the follower long-polls
// repl_fetch so a healthy primary ships each record within one round trip
// — with epochs delimiting checkpoints: a checkpoint compacts records
// (preserving LSNs), so a follower that sees the primary's epoch move
// resynchronises from a full repl_snapshot instead of chasing LSNs that no
// longer exist. Each fetch doubles as the follower's acknowledgement of
// everything at or below its watermark; the primary's ReplicationPrimary
// tracks that watermark so a decision barrier (semi-synchronous
// replication) can hold phase two until the standby holds the decision.
//
// All three verbs belong to the priority admission class
// (orb.DefaultPriorityOps): shedding replication under overload would let
// the standby fall behind exactly when the primary is most likely to die.
const (
	// ReplicationTypeID is the interface id of the WAL replication servant.
	ReplicationTypeID = "IDL:ActivityService/WALReplication:1.0"
	// ReplicationKey is the well-known object key the replication servant
	// serves under — like ots-recovery, a standby needs only the primary's
	// endpoint to find it.
	ReplicationKey = "wal-replication"
)

// ErrPrimaryLost is returned by ReplicationFollower.Run when the primary
// has been unreachable for the takeover policy's failure budget: the
// standby should stop following and take over.
var ErrPrimaryLost = errors.New("remote: replication primary lost")

// fetch reply status octets.
const (
	replOK            = 0
	replEpochMismatch = 1
	// replFenced tells the fetching follower its stream position belongs
	// to a deposed term: either the follower holds an unreplicated suffix
	// it must truncate before streaming (rejoin), or the *server* just
	// learned from the follower's term that it has itself been deposed.
	replFenced = 2
)

// ReplicationPrimary is the primary-side handle returned by
// ServeReplication: it tracks per-follower acknowledgement watermarks and
// lets the commit path wait on them.
type ReplicationPrimary struct {
	log *wal.Log

	mu    sync.Mutex
	acked uint64            // the most advanced follower watermark
	acks  map[string]uint64 // per-follower watermarks, keyed by follower ID
	ackCh chan struct{}     // closed and renewed whenever any watermark advances
}

// noteAck records that follower id has durably applied every record with
// LSN at or below lsn.
func (p *ReplicationPrimary) noteAck(id string, lsn uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	moved := false
	if lsn > p.acks[id] {
		p.acks[id] = lsn
		moved = true
	}
	if lsn > p.acked {
		p.acked = lsn
		moved = true
	}
	if moved {
		close(p.ackCh)
		p.ackCh = make(chan struct{})
	}
}

// Acked returns the highest LSN any follower has acknowledged as durable.
func (p *ReplicationPrimary) Acked() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.acked
}

// FollowerAcks returns a copy of the per-follower ack watermarks (the
// admin scrape reports them as lag against the log's last LSN). Followers
// that never sent an ID are aggregated under "".
func (p *ReplicationPrimary) FollowerAcks() map[string]uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]uint64, len(p.acks))
	for id, lsn := range p.acks {
		out[id] = lsn
	}
	return out
}

// ackedByNLocked reports whether at least n followers have acknowledged
// lsn. The caller must hold p.mu.
func (p *ReplicationPrimary) ackedByNLocked(lsn uint64, n int) bool {
	if n <= 1 {
		return p.acked >= lsn
	}
	count := 0
	for _, a := range p.acks {
		if a >= lsn {
			count++
		}
	}
	return count >= n
}

// WaitForAck blocks until a follower has acknowledged lsn (reporting true)
// or timeout elapses (false).
func (p *ReplicationPrimary) WaitForAck(lsn uint64, timeout time.Duration) bool {
	return p.WaitForAckN(lsn, 1, timeout)
}

// WaitForAckN blocks until at least n distinct followers have acknowledged
// lsn (reporting true) or timeout elapses (false). A coordinator group
// running semi-synchronous replication across N standbys waits for the
// quorum it wants here; n <= 1 waits on the most advanced watermark.
func (p *ReplicationPrimary) WaitForAckN(lsn uint64, n int, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		p.mu.Lock()
		if p.ackedByNLocked(lsn, n) {
			p.mu.Unlock()
			return true
		}
		ch := p.ackCh
		p.mu.Unlock()
		wait := time.Until(deadline)
		if wait <= 0 {
			return false
		}
		timer := time.NewTimer(wait)
		select {
		case <-ch:
			timer.Stop()
		case <-timer.C:
			return false
		}
	}
}

// DecisionBarrier adapts WaitForAck to ots.WithDecisionBarrier: the
// returned hook holds each freshly-logged commit decision until the
// standby acknowledges its LSN or timeout elapses. A timeout degrades to
// asynchronous shipping — the decision is already durable locally and must
// not be un-decided because a standby is slow.
func (p *ReplicationPrimary) DecisionBarrier(timeout time.Duration) func(lsn uint64) {
	return func(lsn uint64) { p.WaitForAck(lsn, timeout) }
}

// DecisionGateN adapts the quorum ack barrier to ots.WithDecisionGate,
// adding the fence check the barrier cannot express. The gate releases a
// freshly-logged commit decision only once n distinct followers have
// durably acknowledged its LSN — so every member a later election could
// pick already holds the decision — and a fence raised at any point
// vetoes the commit with FENCED: a deposed leader's decision is an
// orphan the rejoin truncation cuts, so it must never reach phase two.
//
// Unlike DecisionBarrier, a missing ack does NOT degrade to asynchronous
// shipping: the gate blocks, re-checking the fence every interval, until
// the acks arrive or this member is deposed. Degrading would let a
// leader deliver phase two, die, and leave the election to pick a
// standby that never saw the decision; vetoing on a slow standby would
// be unsafe the other way, because the decision record is already
// durable locally and would replay as commit after a crash while the
// client heard rollback. Blocking is the only outcome consistent on
// both sides of a crash. n < 1 skips the ack wait (a single-member
// group has nobody to wait for) but keeps both fence checks.
func (p *ReplicationPrimary) DecisionGateN(n int, interval time.Duration) func(lsn uint64) error {
	if interval <= 0 {
		interval = time.Second
	}
	return func(lsn uint64) error {
		for {
			if err := p.fenceCheck(); err != nil {
				return err
			}
			if n < 1 || p.WaitForAckN(lsn, n, interval) {
				return p.fenceCheck()
			}
		}
	}
}

// DecisionGate is DecisionGateN over a single follower: the two-member
// (primary plus one standby) deployment's gate. Coordinator groups use
// GroupMember.DecisionGate, which sizes n to the electorate's quorum.
func (p *ReplicationPrimary) DecisionGate(interval time.Duration) func(lsn uint64) error {
	return p.DecisionGateN(1, interval)
}

// fenceCheck surfaces a raised fence as the FENCED system exception.
func (p *ReplicationPrimary) fenceCheck() error {
	if !p.log.Fenced() {
		return nil
	}
	return orb.Systemf(orb.CodeFenced, "term=%d deposed mid-commit", p.log.KnownTerm())
}

// groupHooks is the coordinator group's view of replication-servant
// events. Every hook may be nil (the legacy single-standby deployment has
// no group).
type groupHooks struct {
	// info reports this member's identity for repl_state.
	info func() (memberID string, leader bool, lastElectionMillis int64)
	// claim decides a repl_claim: accept (nil) repoints this member to the
	// claimant; a FENCED error rejects it.
	claim func(term uint64, leaderID string, epoch, lastLSN uint64, endpoints []string) error
	// deposed reports that a fetching follower proved a higher term exists
	// (the log has already been fenced when it runs).
	deposed func(term uint64)
}

// replicationServant exposes a primary's wal.Log over the ORB.
type replicationServant struct {
	log     *wal.Log
	primary *ReplicationPrimary
	hooks   groupHooks
}

// ServeReplication activates the WAL replication servant for log on o
// under ReplicationKey and returns the primary-side handle plus the
// servant's reference. ReplicationAt rebuilds the same reference from
// endpoints alone.
func ServeReplication(o *orb.ORB, log *wal.Log) (*ReplicationPrimary, orb.IOR) {
	p, ref, _ := serveReplication(o, log, groupHooks{})
	return p, ref
}

// serveReplication registers the replication servant with group hooks
// attached; the coordinator group uses it so claims and fence evidence
// reach the member's election state.
func serveReplication(o *orb.ORB, log *wal.Log, hooks groupHooks) (*ReplicationPrimary, orb.IOR, *replicationServant) {
	p := &ReplicationPrimary{log: log, acks: make(map[string]uint64), ackCh: make(chan struct{})}
	s := &replicationServant{log: log, primary: p, hooks: hooks}
	ref := o.RegisterServantWithKey(ReplicationKey, ReplicationTypeID, s)
	return p, ref, s
}

// ReplicationAt builds the IOR of the well-known replication servant
// reachable at the given endpoints (profiles, in preference order). Bare
// host:port addresses are accepted alongside the "tcp:host:port" form
// ORB.Endpoints reports.
func ReplicationAt(endpoints ...string) orb.IOR {
	return orb.NewIOR(ReplicationTypeID, ReplicationKey, normalizeEndpoints(endpoints)...)
}

// maxFetchWait caps how long one repl_fetch may park a dispatch slot.
const maxFetchWait = 30 * time.Second

// Dispatch implements orb.Servant.
func (s *replicationServant) Dispatch(ctx context.Context, op string, in *cdr.Decoder) ([]byte, error) {
	switch op {
	case "repl_state":
		epoch, next := s.log.State()
		ts := s.log.TermState()
		memberID, leader, lastElection := "", false, int64(0)
		if s.hooks.info != nil {
			memberID, leader, lastElection = s.hooks.info()
		}
		e := cdr.NewEncoder(64)
		e.WriteUint64(epoch)
		e.WriteUint64(next)
		e.WriteUint64(s.primary.Acked())
		e.WriteUint64(ts.Term)
		e.WriteUint64(ts.Start)
		e.WriteString(ts.Leader)
		e.WriteString(memberID)
		e.WriteBool(leader)
		e.WriteInt64(lastElection)
		return e.Bytes(), nil

	case "repl_fetch":
		epoch := in.ReadUint64()
		after := in.ReadUint64()
		waitMillis := in.ReadUint32()
		max := in.ReadUint32()
		followerID, followerTerm := "", uint64(0)
		if in.Err() == nil && in.Remaining() > 0 {
			followerID = in.ReadString()
			followerTerm = in.ReadUint64()
		}
		if err := in.Err(); err != nil {
			return nil, orb.Systemf(orb.CodeMarshal, "repl_fetch: %v", err)
		}
		if out, fenced := s.fenceFetch(after, followerTerm); fenced {
			return out, nil
		}
		curEpoch, _ := s.log.State()
		e := cdr.NewEncoder(256)
		if epoch != curEpoch {
			// The follower's stream position predates a checkpoint (or it
			// is ahead after a failed takeover); it must resynchronise from
			// a snapshot. Its watermark is from another epoch — ignore it.
			e.WriteOctet(replEpochMismatch)
			e.WriteUint64(curEpoch)
			e.WriteUint32(0)
			return e.Bytes(), nil
		}
		// A fetch after X acknowledges X: the follower only advances its
		// watermark once records are durable in its own log.
		s.primary.noteAck(followerID, after)
		if wait := time.Duration(waitMillis) * time.Millisecond; wait > 0 {
			if wait > maxFetchWait {
				wait = maxFetchWait
			}
			s.log.WaitSince(epoch, after, wait)
			// The epoch may have moved while parked; re-read and report
			// honestly so the follower resyncs rather than mixing streams.
			if curEpoch, _ = s.log.State(); curEpoch != epoch {
				e.WriteOctet(replEpochMismatch)
				e.WriteUint64(curEpoch)
				e.WriteUint32(0)
				return e.Bytes(), nil
			}
		}
		recs, err := s.log.RecordsSince(after)
		if err != nil {
			return nil, fmt.Errorf("repl_fetch: %w", err)
		}
		if max > 0 && len(recs) > int(max) {
			recs = recs[:max]
		}
		e.WriteOctet(replOK)
		e.WriteUint64(curEpoch)
		e.WriteUint32(uint32(len(recs)))
		for _, r := range recs {
			e.WriteUint64(r.LSN)
			e.WriteUint32(uint32(r.Kind))
			e.WriteBytes(r.Data)
		}
		return e.Bytes(), nil

	case "repl_snapshot":
		epoch, next := s.log.State()
		snap, err := s.log.Snapshot()
		if err != nil {
			return nil, fmt.Errorf("repl_snapshot: %w", err)
		}
		e := cdr.NewEncoder(64 + len(snap))
		e.WriteUint64(epoch)
		e.WriteUint64(next)
		e.WriteBytes(snap)
		return e.Bytes(), nil

	case "repl_claim":
		term := in.ReadUint64()
		leaderID := in.ReadString()
		claimEpoch := in.ReadUint64()
		claimLast := in.ReadUint64()
		endpoints := in.ReadStringList()
		if err := in.Err(); err != nil {
			return nil, orb.Systemf(orb.CodeMarshal, "repl_claim: %v", err)
		}
		if err := s.handleClaim(term, leaderID, claimEpoch, claimLast, endpoints); err != nil {
			return nil, err
		}
		epoch, next := s.log.State()
		e := cdr.NewEncoder(32)
		e.WriteUint64(epoch)
		e.WriteUint64(next - 1)
		return e.Bytes(), nil

	default:
		return nil, orb.Systemf(orb.CodeBadOperation, "WALReplication has no operation %q", op)
	}
}

// fenceFetch applies the term checks guarding repl_fetch, implementing
// both directions of the fence:
//
//   - The follower proves a higher term than this server knows: the server
//     has been deposed — fence the local log so in-flight appends (a
//     decision racing phase two) fail FENCED, tell the group, and answer
//     replFenced so the follower looks for the real leader.
//   - The follower's term is behind this server's and its stream position
//     reaches into a newer term's history: the follower is a deposed
//     leader holding an unreplicated suffix. Streaming to it would silently
//     diverge (its orphan records occupy LSNs this log assigned to other
//     records), so the reply carries the exact truncation bound — the
//     start of the first term beyond the follower's — for the follower's
//     crash-atomic rejoin cut.
func (s *replicationServant) fenceFetch(after, followerTerm uint64) ([]byte, bool) {
	known := s.log.KnownTerm()
	if followerTerm > known {
		s.log.Fence(followerTerm)
		if s.hooks.deposed != nil {
			s.hooks.deposed(followerTerm)
		}
		return encodeFencedReply(followerTerm, 0, "", nil), true
	}
	if term := s.log.Term(); followerTerm < term {
		if cut, ok := s.log.TermStartAfter(followerTerm); ok && after >= cut {
			ts := s.log.TermState()
			return encodeFencedReply(ts.Term, cut-1, ts.Leader, nil), true
		}
	}
	return nil, false
}

// handleClaim decides a repl_claim. The group's claim hook owns the
// decision when present; without a group the legacy rules apply: a claim
// for a term at or below the known one is fenced off, as is any claimant
// whose log does not subsume this member's — a stale epoch (the claimant
// missed a checkpoint this log has folded in), or a shorter log within
// the same epoch. LSNs survive compaction, but an epoch behind the
// voter's means the claimant's history stopped on an older line, so the
// comparison is epoch first, LSN within the epoch.
func (s *replicationServant) handleClaim(term uint64, leaderID string, claimEpoch, claimLast uint64, endpoints []string) error {
	if s.hooks.claim != nil {
		return s.hooks.claim(term, leaderID, claimEpoch, claimLast, endpoints)
	}
	if known := s.log.KnownTerm(); term <= known {
		ts := s.log.TermState()
		return orb.Systemf(orb.CodeFenced, "term=%d leader=%s claim for stale term %d", known, ts.Leader, term)
	}
	epoch, _ := s.log.State()
	if last := s.log.LastLSN(); claimEpoch < epoch || (claimEpoch == epoch && claimLast < last) {
		return orb.Systemf(orb.CodeFenced, "term=%d durable epoch %d lsn %d not subsumed by claimant epoch %d lsn %d",
			s.log.KnownTerm(), epoch, last, claimEpoch, claimLast)
	}
	s.log.Fence(term)
	return nil
}

// encodeFencedReply builds a replFenced fetch reply: the server's term,
// the truncation bound for a rejoining deposed leader (0 when the server
// itself is the stale party), and the leader hint.
func encodeFencedReply(term, truncateTo uint64, leaderID string, endpoints []string) []byte {
	e := cdr.NewEncoder(64)
	e.WriteOctet(replFenced)
	e.WriteUint64(term)
	e.WriteUint64(truncateTo)
	e.WriteString(leaderID)
	e.WriteStringList(endpoints)
	return e.Bytes()
}

// TakeoverPolicy says when a follower should declare the primary lost:
// after Failures consecutive failed fetch rounds, Retry apart.
type TakeoverPolicy struct {
	// Failures is how many consecutive fetch failures Run tolerates before
	// returning ErrPrimaryLost.
	Failures int
	// Retry is the pause between a failed round and the next attempt.
	Retry time.Duration
}

// ReplicationFollower streams a primary's WAL into a local follower log.
type ReplicationFollower struct {
	orb      *orb.ORB
	ref      orb.IOR
	log      *wal.Log
	id       string
	poll     time.Duration
	batch    uint32
	policy   TakeoverPolicy
	onRecord func(wal.Record)
	onFenced func(term uint64, leaderID string, endpoints []string)
}

// FollowerOption configures a ReplicationFollower.
type FollowerOption func(*ReplicationFollower)

// WithPollTimeout sets how long each fetch long-polls on the primary when
// the follower is caught up (default 2s; clamped by the primary to 30s).
func WithPollTimeout(d time.Duration) FollowerOption {
	return func(f *ReplicationFollower) {
		if d > 0 {
			f.poll = d
		}
	}
}

// WithTakeoverPolicy sets when Run declares the primary lost.
func WithTakeoverPolicy(p TakeoverPolicy) FollowerOption {
	return func(f *ReplicationFollower) {
		if p.Failures > 0 {
			f.policy.Failures = p.Failures
		}
		if p.Retry > 0 {
			f.policy.Retry = p.Retry
		}
	}
}

// WithRecordObserver installs a hook invoked after each shipped record is
// durable in the follower's log (tests use it to track replication lag).
func WithRecordObserver(fn func(wal.Record)) FollowerOption {
	return func(f *ReplicationFollower) { f.onRecord = fn }
}

// WithFollowerID names this follower on the wire: the primary keys its
// per-follower ack watermark by it, and the admin scrape reports lag under
// it. Coordinator-group members use their member ID.
func WithFollowerID(id string) FollowerOption {
	return func(f *ReplicationFollower) { f.id = id }
}

// WithFencedObserver installs a hook invoked when a fetch is answered
// replFenced: the server's term, and its leader hint when it knows one.
// Coordinator-group members repoint their stream from it.
func WithFencedObserver(fn func(term uint64, leaderID string, endpoints []string)) FollowerOption {
	return func(f *ReplicationFollower) { f.onFenced = fn }
}

// NewReplicationFollower returns a follower that streams the replication
// servant at ref through o into log.
func NewReplicationFollower(o *orb.ORB, ref orb.IOR, log *wal.Log, opts ...FollowerOption) *ReplicationFollower {
	f := &ReplicationFollower{
		orb:    o,
		ref:    ref,
		log:    log,
		poll:   2 * time.Second,
		batch:  256,
		policy: TakeoverPolicy{Failures: 3, Retry: 100 * time.Millisecond},
	}
	for _, opt := range opts {
		opt(f)
	}
	return f
}

// Sync runs one replication round: fetch the records beyond the follower's
// position and apply them, or resynchronise from a snapshot after an epoch
// mismatch. It returns the number of records (or snapshots, counted as
// one) applied. A healthy caught-up round long-polls on the primary until
// something happens or the poll timeout elapses, then returns (0, nil).
func (f *ReplicationFollower) Sync(ctx context.Context) (int, error) {
	epoch, next := f.log.State()
	e := cdr.NewEncoder(64)
	e.WriteUint64(epoch)
	e.WriteUint64(next - 1)
	e.WriteUint32(uint32(f.poll / time.Millisecond))
	e.WriteUint32(f.batch)
	e.WriteString(f.id)
	e.WriteUint64(f.log.KnownTerm())
	body, err := f.orb.Invoke(ctx, f.ref, "repl_fetch", e.Bytes())
	if err != nil {
		return 0, fmt.Errorf("repl_fetch: %w", err)
	}
	d := cdr.NewDecoder(body)
	status := d.ReadOctet()
	if err := d.Err(); err != nil {
		return 0, orb.Systemf(orb.CodeMarshal, "repl_fetch reply: %v", err)
	}
	if status == replFenced {
		return f.handleFenced(d)
	}
	d.ReadUint64() // primary epoch; re-read under repl_snapshot when resyncing
	count := d.ReadUint32()
	if err := d.Err(); err != nil {
		return 0, orb.Systemf(orb.CodeMarshal, "repl_fetch reply: %v", err)
	}
	if status == replEpochMismatch {
		if err := f.resync(ctx); err != nil {
			return 0, err
		}
		return 1, nil
	}
	applied := 0
	for i := uint32(0); i < count; i++ {
		rec := wal.Record{
			LSN:  d.ReadUint64(),
			Kind: wal.Kind(d.ReadUint32()),
			Data: d.ReadBytesClone(),
		}
		if err := d.Err(); err != nil {
			return applied, orb.Systemf(orb.CodeMarshal, "repl_fetch record: %v", err)
		}
		err := f.log.AppendRecord(rec)
		if errors.Is(err, wal.ErrStaleRecord) {
			continue // duplicate shipment; already durable here
		}
		if err != nil {
			return applied, fmt.Errorf("apply shipped record %d: %w", rec.LSN, err)
		}
		applied++
		if f.onRecord != nil {
			f.onRecord(rec)
		}
	}
	return applied, nil
}

// handleFenced applies a replFenced fetch reply — the automatic rejoin
// path. A reply naming a term beyond this follower's and a truncation
// bound below its position is the deposed-leader case: the follower cuts
// its unreplicated suffix (crash-atomic, the torn-tail repair path),
// fences its local appends under the new term, and resumes streaming —
// the next fetch starts below the cut and the new leader's term record
// arrives in sequence. Any other fenced reply means the *server* is the
// stale party (this follower out-ran its term); it counts as a failed
// round so the takeover budget eventually moves the follower elsewhere.
func (f *ReplicationFollower) handleFenced(d *cdr.Decoder) (int, error) {
	term := d.ReadUint64()
	truncateTo := d.ReadUint64()
	leaderID := d.ReadString()
	endpoints := d.ReadStringList()
	if err := d.Err(); err != nil {
		return 0, orb.Systemf(orb.CodeMarshal, "repl_fetch fenced reply: %v", err)
	}
	if f.onFenced != nil {
		f.onFenced(term, leaderID, endpoints)
	}
	if term >= f.log.KnownTerm() && truncateTo > 0 && f.log.LastLSN() > truncateTo {
		f.log.Fence(term)
		if err := f.log.TruncateAfter(truncateTo); err != nil {
			return 0, fmt.Errorf("rejoin truncation to %d: %w", truncateTo, err)
		}
		return 1, nil
	}
	return 0, orb.Systemf(orb.CodeFenced, "term=%d leader=%s fetch fenced", term, leaderID)
}

// resync installs a full primary snapshot, adopting its epoch.
func (f *ReplicationFollower) resync(ctx context.Context) error {
	body, err := f.orb.Invoke(ctx, f.ref, "repl_snapshot", nil)
	if err != nil {
		return fmt.Errorf("repl_snapshot: %w", err)
	}
	d := cdr.NewDecoder(body)
	epoch := d.ReadUint64()
	d.ReadUint64() // next LSN; implied by the snapshot contents
	snap := d.ReadBytesClone()
	if err := d.Err(); err != nil {
		return orb.Systemf(orb.CodeMarshal, "repl_snapshot reply: %v", err)
	}
	if err := f.log.InstallSnapshot(epoch, snap); err != nil {
		return fmt.Errorf("install snapshot: %w", err)
	}
	return nil
}

// Run streams the primary until ctx is cancelled (returning nil) or the
// primary has been unreachable for the takeover policy's failure budget
// (returning ErrPrimaryLost, the standby's cue to take over). Transient
// failures inside the budget are retried after the policy's pause.
func (f *ReplicationFollower) Run(ctx context.Context) error {
	failures := 0
	for {
		if ctx.Err() != nil {
			return nil
		}
		_, err := f.Sync(ctx)
		if err == nil {
			failures = 0
			continue
		}
		if ctx.Err() != nil {
			return nil
		}
		failures++
		if failures >= f.policy.Failures {
			return fmt.Errorf("%w: %d consecutive fetch failures, last: %v",
				ErrPrimaryLost, failures, err)
		}
		timer := time.NewTimer(f.policy.Retry)
		select {
		case <-ctx.Done():
			timer.Stop()
			return nil
		case <-timer.C:
		}
	}
}
