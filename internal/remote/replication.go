package remote

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/extendedtx/activityservice/internal/cdr"
	"github.com/extendedtx/activityservice/internal/orb"
	"github.com/extendedtx/activityservice/internal/wal"
)

// WAL replication over the ORB: the primary coordinator exposes its
// decision log as a well-known servant and a warm standby streams it into
// a follower wal.Log. The protocol is pull-based — the follower long-polls
// repl_fetch so a healthy primary ships each record within one round trip
// — with epochs delimiting checkpoints: a checkpoint compacts records
// (preserving LSNs), so a follower that sees the primary's epoch move
// resynchronises from a full repl_snapshot instead of chasing LSNs that no
// longer exist. Each fetch doubles as the follower's acknowledgement of
// everything at or below its watermark; the primary's ReplicationPrimary
// tracks that watermark so a decision barrier (semi-synchronous
// replication) can hold phase two until the standby holds the decision.
//
// All three verbs belong to the priority admission class
// (orb.DefaultPriorityOps): shedding replication under overload would let
// the standby fall behind exactly when the primary is most likely to die.
const (
	// ReplicationTypeID is the interface id of the WAL replication servant.
	ReplicationTypeID = "IDL:ActivityService/WALReplication:1.0"
	// ReplicationKey is the well-known object key the replication servant
	// serves under — like ots-recovery, a standby needs only the primary's
	// endpoint to find it.
	ReplicationKey = "wal-replication"
)

// ErrPrimaryLost is returned by ReplicationFollower.Run when the primary
// has been unreachable for the takeover policy's failure budget: the
// standby should stop following and take over.
var ErrPrimaryLost = errors.New("remote: replication primary lost")

// fetch reply status octets.
const (
	replOK            = 0
	replEpochMismatch = 1
)

// ReplicationPrimary is the primary-side handle returned by
// ServeReplication: it tracks the follower acknowledgement watermark and
// lets the commit path wait on it.
type ReplicationPrimary struct {
	log *wal.Log

	mu    sync.Mutex
	acked uint64
	ackCh chan struct{} // closed and renewed whenever acked advances
}

// noteAck records that a follower has durably applied every record with
// LSN at or below lsn.
func (p *ReplicationPrimary) noteAck(lsn uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if lsn > p.acked {
		p.acked = lsn
		close(p.ackCh)
		p.ackCh = make(chan struct{})
	}
}

// Acked returns the highest LSN a follower has acknowledged as durable.
func (p *ReplicationPrimary) Acked() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.acked
}

// WaitForAck blocks until a follower has acknowledged lsn (reporting true)
// or timeout elapses (false). With multiple standbys the watermark is the
// most advanced one — the deployment story is one warm standby.
func (p *ReplicationPrimary) WaitForAck(lsn uint64, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		p.mu.Lock()
		if p.acked >= lsn {
			p.mu.Unlock()
			return true
		}
		ch := p.ackCh
		p.mu.Unlock()
		wait := time.Until(deadline)
		if wait <= 0 {
			return false
		}
		timer := time.NewTimer(wait)
		select {
		case <-ch:
			timer.Stop()
		case <-timer.C:
			return false
		}
	}
}

// DecisionBarrier adapts WaitForAck to ots.WithDecisionBarrier: the
// returned hook holds each freshly-logged commit decision until the
// standby acknowledges its LSN or timeout elapses. A timeout degrades to
// asynchronous shipping — the decision is already durable locally and must
// not be un-decided because a standby is slow.
func (p *ReplicationPrimary) DecisionBarrier(timeout time.Duration) func(lsn uint64) {
	return func(lsn uint64) { p.WaitForAck(lsn, timeout) }
}

// replicationServant exposes a primary's wal.Log over the ORB.
type replicationServant struct {
	log     *wal.Log
	primary *ReplicationPrimary
}

// ServeReplication activates the WAL replication servant for log on o
// under ReplicationKey and returns the primary-side handle plus the
// servant's reference. ReplicationAt rebuilds the same reference from
// endpoints alone.
func ServeReplication(o *orb.ORB, log *wal.Log) (*ReplicationPrimary, orb.IOR) {
	p := &ReplicationPrimary{log: log, ackCh: make(chan struct{})}
	ref := o.RegisterServantWithKey(ReplicationKey, ReplicationTypeID,
		&replicationServant{log: log, primary: p})
	return p, ref
}

// ReplicationAt builds the IOR of the well-known replication servant
// reachable at the given endpoints (profiles, in preference order). Bare
// host:port addresses are accepted alongside the "tcp:host:port" form
// ORB.Endpoints reports.
func ReplicationAt(endpoints ...string) orb.IOR {
	return orb.NewIOR(ReplicationTypeID, ReplicationKey, normalizeEndpoints(endpoints)...)
}

// maxFetchWait caps how long one repl_fetch may park a dispatch slot.
const maxFetchWait = 30 * time.Second

// Dispatch implements orb.Servant.
func (s *replicationServant) Dispatch(ctx context.Context, op string, in *cdr.Decoder) ([]byte, error) {
	switch op {
	case "repl_state":
		epoch, next := s.log.State()
		e := cdr.NewEncoder(32)
		e.WriteUint64(epoch)
		e.WriteUint64(next)
		e.WriteUint64(s.primary.Acked())
		return e.Bytes(), nil

	case "repl_fetch":
		epoch := in.ReadUint64()
		after := in.ReadUint64()
		waitMillis := in.ReadUint32()
		max := in.ReadUint32()
		if err := in.Err(); err != nil {
			return nil, orb.Systemf(orb.CodeMarshal, "repl_fetch: %v", err)
		}
		curEpoch, _ := s.log.State()
		e := cdr.NewEncoder(256)
		if epoch != curEpoch {
			// The follower's stream position predates a checkpoint (or it
			// is ahead after a failed takeover); it must resynchronise from
			// a snapshot. Its watermark is from another epoch — ignore it.
			e.WriteOctet(replEpochMismatch)
			e.WriteUint64(curEpoch)
			e.WriteUint32(0)
			return e.Bytes(), nil
		}
		// A fetch after X acknowledges X: the follower only advances its
		// watermark once records are durable in its own log.
		s.primary.noteAck(after)
		if wait := time.Duration(waitMillis) * time.Millisecond; wait > 0 {
			if wait > maxFetchWait {
				wait = maxFetchWait
			}
			s.log.WaitSince(epoch, after, wait)
			// The epoch may have moved while parked; re-read and report
			// honestly so the follower resyncs rather than mixing streams.
			if curEpoch, _ = s.log.State(); curEpoch != epoch {
				e.WriteOctet(replEpochMismatch)
				e.WriteUint64(curEpoch)
				e.WriteUint32(0)
				return e.Bytes(), nil
			}
		}
		recs, err := s.log.RecordsSince(after)
		if err != nil {
			return nil, fmt.Errorf("repl_fetch: %w", err)
		}
		if max > 0 && len(recs) > int(max) {
			recs = recs[:max]
		}
		e.WriteOctet(replOK)
		e.WriteUint64(curEpoch)
		e.WriteUint32(uint32(len(recs)))
		for _, r := range recs {
			e.WriteUint64(r.LSN)
			e.WriteUint32(uint32(r.Kind))
			e.WriteBytes(r.Data)
		}
		return e.Bytes(), nil

	case "repl_snapshot":
		epoch, next := s.log.State()
		snap, err := s.log.Snapshot()
		if err != nil {
			return nil, fmt.Errorf("repl_snapshot: %w", err)
		}
		e := cdr.NewEncoder(64 + len(snap))
		e.WriteUint64(epoch)
		e.WriteUint64(next)
		e.WriteBytes(snap)
		return e.Bytes(), nil

	default:
		return nil, orb.Systemf(orb.CodeBadOperation, "WALReplication has no operation %q", op)
	}
}

// TakeoverPolicy says when a follower should declare the primary lost:
// after Failures consecutive failed fetch rounds, Retry apart.
type TakeoverPolicy struct {
	// Failures is how many consecutive fetch failures Run tolerates before
	// returning ErrPrimaryLost.
	Failures int
	// Retry is the pause between a failed round and the next attempt.
	Retry time.Duration
}

// ReplicationFollower streams a primary's WAL into a local follower log.
type ReplicationFollower struct {
	orb      *orb.ORB
	ref      orb.IOR
	log      *wal.Log
	poll     time.Duration
	batch    uint32
	policy   TakeoverPolicy
	onRecord func(wal.Record)
}

// FollowerOption configures a ReplicationFollower.
type FollowerOption func(*ReplicationFollower)

// WithPollTimeout sets how long each fetch long-polls on the primary when
// the follower is caught up (default 2s; clamped by the primary to 30s).
func WithPollTimeout(d time.Duration) FollowerOption {
	return func(f *ReplicationFollower) {
		if d > 0 {
			f.poll = d
		}
	}
}

// WithTakeoverPolicy sets when Run declares the primary lost.
func WithTakeoverPolicy(p TakeoverPolicy) FollowerOption {
	return func(f *ReplicationFollower) {
		if p.Failures > 0 {
			f.policy.Failures = p.Failures
		}
		if p.Retry > 0 {
			f.policy.Retry = p.Retry
		}
	}
}

// WithRecordObserver installs a hook invoked after each shipped record is
// durable in the follower's log (tests use it to track replication lag).
func WithRecordObserver(fn func(wal.Record)) FollowerOption {
	return func(f *ReplicationFollower) { f.onRecord = fn }
}

// NewReplicationFollower returns a follower that streams the replication
// servant at ref through o into log.
func NewReplicationFollower(o *orb.ORB, ref orb.IOR, log *wal.Log, opts ...FollowerOption) *ReplicationFollower {
	f := &ReplicationFollower{
		orb:    o,
		ref:    ref,
		log:    log,
		poll:   2 * time.Second,
		batch:  256,
		policy: TakeoverPolicy{Failures: 3, Retry: 100 * time.Millisecond},
	}
	for _, opt := range opts {
		opt(f)
	}
	return f
}

// Sync runs one replication round: fetch the records beyond the follower's
// position and apply them, or resynchronise from a snapshot after an epoch
// mismatch. It returns the number of records (or snapshots, counted as
// one) applied. A healthy caught-up round long-polls on the primary until
// something happens or the poll timeout elapses, then returns (0, nil).
func (f *ReplicationFollower) Sync(ctx context.Context) (int, error) {
	epoch, next := f.log.State()
	e := cdr.NewEncoder(32)
	e.WriteUint64(epoch)
	e.WriteUint64(next - 1)
	e.WriteUint32(uint32(f.poll / time.Millisecond))
	e.WriteUint32(f.batch)
	body, err := f.orb.Invoke(ctx, f.ref, "repl_fetch", e.Bytes())
	if err != nil {
		return 0, fmt.Errorf("repl_fetch: %w", err)
	}
	d := cdr.NewDecoder(body)
	status := d.ReadOctet()
	d.ReadUint64() // primary epoch; re-read under repl_snapshot when resyncing
	count := d.ReadUint32()
	if err := d.Err(); err != nil {
		return 0, orb.Systemf(orb.CodeMarshal, "repl_fetch reply: %v", err)
	}
	if status == replEpochMismatch {
		if err := f.resync(ctx); err != nil {
			return 0, err
		}
		return 1, nil
	}
	applied := 0
	for i := uint32(0); i < count; i++ {
		rec := wal.Record{
			LSN:  d.ReadUint64(),
			Kind: wal.Kind(d.ReadUint32()),
			Data: d.ReadBytesClone(),
		}
		if err := d.Err(); err != nil {
			return applied, orb.Systemf(orb.CodeMarshal, "repl_fetch record: %v", err)
		}
		err := f.log.AppendRecord(rec)
		if errors.Is(err, wal.ErrStaleRecord) {
			continue // duplicate shipment; already durable here
		}
		if err != nil {
			return applied, fmt.Errorf("apply shipped record %d: %w", rec.LSN, err)
		}
		applied++
		if f.onRecord != nil {
			f.onRecord(rec)
		}
	}
	return applied, nil
}

// resync installs a full primary snapshot, adopting its epoch.
func (f *ReplicationFollower) resync(ctx context.Context) error {
	body, err := f.orb.Invoke(ctx, f.ref, "repl_snapshot", nil)
	if err != nil {
		return fmt.Errorf("repl_snapshot: %w", err)
	}
	d := cdr.NewDecoder(body)
	epoch := d.ReadUint64()
	d.ReadUint64() // next LSN; implied by the snapshot contents
	snap := d.ReadBytesClone()
	if err := d.Err(); err != nil {
		return orb.Systemf(orb.CodeMarshal, "repl_snapshot reply: %v", err)
	}
	if err := f.log.InstallSnapshot(epoch, snap); err != nil {
		return fmt.Errorf("install snapshot: %w", err)
	}
	return nil
}

// Run streams the primary until ctx is cancelled (returning nil) or the
// primary has been unreachable for the takeover policy's failure budget
// (returning ErrPrimaryLost, the standby's cue to take over). Transient
// failures inside the budget are retried after the policy's pause.
func (f *ReplicationFollower) Run(ctx context.Context) error {
	failures := 0
	for {
		if ctx.Err() != nil {
			return nil
		}
		_, err := f.Sync(ctx)
		if err == nil {
			failures = 0
			continue
		}
		if ctx.Err() != nil {
			return nil
		}
		failures++
		if failures >= f.policy.Failures {
			return fmt.Errorf("%w: %d consecutive fetch failures, last: %v",
				ErrPrimaryLost, failures, err)
		}
		timer := time.NewTimer(f.policy.Retry)
		select {
		case <-ctx.Done():
			timer.Stop()
			return nil
		case <-timer.C:
		}
	}
}
