package remote

import (
	"context"
	"errors"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"github.com/extendedtx/activityservice/internal/orb"
	"github.com/extendedtx/activityservice/internal/wal"
)

// groupTestPolicy keeps elections fast under the race detector.
var groupTestPolicy = TakeoverPolicy{Failures: 2, Retry: 20 * time.Millisecond}

// testMember is one coordinator-group member under test: its ORB, log,
// GroupMember and the Run goroutine's plumbing.
type testMember struct {
	o      *orb.ORB
	log    *wal.Log
	g      *GroupMember
	eps    []string
	cancel context.CancelFunc
	done   chan error
}

// listenORB returns a listening ORB and its endpoints.
func listenORB(t *testing.T) (*orb.ORB, []string) {
	t.Helper()
	o := orb.New()
	t.Cleanup(o.Shutdown)
	if _, err := o.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	return o, o.Endpoints()
}

// deadEndpoint returns an endpoint that refuses connections (a listener
// that has already shut down) — the "leader died" seed for elections.
func deadEndpoint(t *testing.T) string {
	t.Helper()
	o := orb.New()
	if _, err := o.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	ep := o.Endpoints()[0]
	o.Shutdown()
	return ep
}

// newTestMember builds a group member on a fresh listening ORB. Peers and
// leader hints are wired by the caller (endpoints are only known after
// Listen), so cfg.Peers/LeaderHint may reference other members.
func newTestMember(t *testing.T, id string, log *wal.Log, peers, hint []string, takeover func(ctx context.Context) error) *testMember {
	t.Helper()
	o, eps := listenORB(t)
	m := &testMember{o: o, log: log, eps: eps}
	m.g = NewGroupMember(o, log, GroupConfig{
		MemberID:      id,
		Peers:         peers,
		LeaderHint:    hint,
		Takeover:      takeover,
		Poll:          100 * time.Millisecond,
		Policy:        groupTestPolicy,
		ElectionRetry: 20 * time.Millisecond,
		ProbeTimeout:  time.Second,
	})
	return m
}

// start launches the member's Run loop; stop cancels it and waits.
func (m *testMember) start(t *testing.T) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	m.cancel = cancel
	m.done = make(chan error, 1)
	go func() { m.done <- m.g.Run(ctx) }()
	t.Cleanup(func() { m.stop(t) })
}

func (m *testMember) stop(t *testing.T) {
	t.Helper()
	if m.cancel == nil {
		return
	}
	m.cancel()
	select {
	case err := <-m.done:
		if err != nil {
			t.Errorf("member run: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Error("member run did not stop")
	}
	m.cancel = nil
}

// waitRole blocks until the member reports role (or fails the test).
func waitRole(t *testing.T, m *testMember, role GroupRole) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for m.g.Role() != role {
		if time.Now().After(deadline) {
			t.Fatalf("member stuck in role %v, want %v", m.g.Role(), role)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// seedLog returns a memory log holding n one-byte records.
func seedLog(t *testing.T, n int) *wal.Log {
	t.Helper()
	l := wal.NewMemory()
	for i := 0; i < n; i++ {
		if _, err := l.Append(wal.Kind(7), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	return l
}

// TestElectionHighestLSNWins kills the leader of a three-member group
// where one standby holds more durable history than the other: the
// longer log must win the election, and the shorter one must converge to
// it as a follower.
func TestElectionHighestLSNWins(t *testing.T) {
	dead := deadEndpoint(t)
	// b holds 5 durable records, c only their 3-record prefix.
	bLog, cLog := seedLog(t, 5), seedLog(t, 3)

	var tookOver atomic32
	bORB, bEps := listenORB(t)
	cORB, cEps := listenORB(t)
	b := &testMember{o: bORB, log: bLog, eps: bEps}
	c := &testMember{o: cORB, log: cLog, eps: cEps}
	b.g = NewGroupMember(bORB, bLog, GroupConfig{
		MemberID: "b", Peers: []string{cEps[0]}, LeaderHint: []string{dead},
		Takeover:      func(context.Context) error { tookOver.inc(); return nil },
		Poll:          50 * time.Millisecond,
		Policy:        groupTestPolicy,
		ElectionRetry: 20 * time.Millisecond,
	})
	c.g = NewGroupMember(cORB, cLog, GroupConfig{
		MemberID: "c", Peers: []string{bEps[0]}, LeaderHint: []string{dead},
		Takeover:      func(context.Context) error { t.Error("shorter log won the election"); return nil },
		Poll:          50 * time.Millisecond,
		Policy:        groupTestPolicy,
		ElectionRetry: 20 * time.Millisecond,
	})
	b.start(t)
	c.start(t)

	waitRole(t, b, RoleLeader)
	waitRole(t, c, RoleFollower)
	if got := tookOver.load(); got != 1 {
		t.Fatalf("winner ran takeover %d times, want 1", got)
	}
	// b claimed term 1 (record 6); c converges to b's full history.
	waitLSN(t, cLog, 6)
	if ts := cLog.TermState(); ts.Term != 1 || ts.Leader != "b" {
		t.Fatalf("loser's term state = %+v, want term 1 led by b", ts)
	}
	if id, _ := c.g.Leader(); id != "b" {
		t.Fatalf("loser follows %q, want b", id)
	}

	// The admin scrape reports the group state from both sides.
	sc := b.g.Scrape()
	if sc.Role != "leader" || sc.Term != 1 || sc.MemberID != "b" {
		t.Fatalf("leader scrape = %+v", sc)
	}
	waitFollowerAck(t, b.g, "c", 6)
	if sc := c.g.Scrape(); sc.Role != "follower" || sc.LeaderID != "b" {
		t.Fatalf("follower scrape = %+v", sc)
	}
}

// waitFollowerAck blocks until the leader's scrape shows follower id
// acked through lsn.
func waitFollowerAck(t *testing.T, g *GroupMember, id string, lsn uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		for _, f := range g.Scrape().Followers {
			if f.ID == id && f.Acked >= lsn {
				if f.Lag != g.Scrape().LastLSN-f.Acked {
					t.Fatalf("follower %s lag %d inconsistent with acked %d", id, f.Lag, f.Acked)
				}
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("leader scrape never showed %s acked %d: %+v", id, lsn, g.Scrape().Followers)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestElectionTiebreakMemberID gives both standbys identical logs: the
// smaller member ID must win.
func TestElectionTiebreakMemberID(t *testing.T) {
	dead := deadEndpoint(t)
	aLog, bLog := seedLog(t, 4), seedLog(t, 4)

	aORB, aEps := listenORB(t)
	bORB, bEps := listenORB(t)
	a := &testMember{o: aORB, log: aLog, eps: aEps}
	b := &testMember{o: bORB, log: bLog, eps: bEps}
	a.g = NewGroupMember(aORB, aLog, GroupConfig{
		MemberID: "a", Peers: []string{bEps[0]}, LeaderHint: []string{dead},
		Poll: 50 * time.Millisecond, Policy: groupTestPolicy, ElectionRetry: 20 * time.Millisecond,
	})
	b.g = NewGroupMember(bORB, bLog, GroupConfig{
		MemberID: "b", Peers: []string{aEps[0]}, LeaderHint: []string{dead},
		Poll: 50 * time.Millisecond, Policy: groupTestPolicy, ElectionRetry: 20 * time.Millisecond,
	})
	a.start(t)
	b.start(t)

	waitRole(t, a, RoleLeader)
	waitRole(t, b, RoleFollower)
	if ts := aLog.TermState(); ts.Term != 1 || ts.Leader != "a" {
		t.Fatalf("winner term state = %+v", ts)
	}
	waitLSN(t, bLog, 5) // the term record replicated
}

// TestRejoinTruncatesUnreplicatedSuffix is the deposed-leader rejoin
// matrix: leader a dies holding an unreplicated suffix, standby b elects
// itself and moves on, and a — restarted on its old WAL, no operator
// flags — truncates the orphan suffix and converges as a follower of b's
// new term.
func TestRejoinTruncatesUnreplicatedSuffix(t *testing.T) {
	aPath := filepath.Join(t.TempDir(), "a.wal")
	aLog, err := wal.OpenFile(aPath)
	if err != nil {
		t.Fatal(err)
	}

	// Epoch 1: a leads term 1 and replicates three records to b.
	aORB, aEps := listenORB(t)
	a := &testMember{o: aORB, log: aLog, eps: aEps}
	a.g = NewGroupMember(aORB, aLog, GroupConfig{MemberID: "a"})
	if err := a.g.Promote(context.Background()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := aLog.Append(wal.Kind(7), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}

	bLog := wal.NewMemory()
	bORB, bEps := listenORB(t)
	b := &testMember{o: bORB, log: bLog, eps: bEps}
	b.g = NewGroupMember(bORB, bLog, GroupConfig{
		MemberID: "b", LeaderHint: aEps,
		Poll: 50 * time.Millisecond, Policy: groupTestPolicy, ElectionRetry: 20 * time.Millisecond,
	})
	b.start(t)
	waitLSN(t, bLog, 4) // term record + 3 data records

	// a appends an orphan the standby never sees — b's stream is paused
	// first, else the long-poll ships it within a round trip — then dies.
	b.stop(t)
	if _, err := aLog.Append(wal.Kind(7), []byte("orphan")); err != nil {
		t.Fatal(err)
	}
	aORB.Shutdown()
	if err := aLog.Close(); err != nil {
		t.Fatal(err)
	}

	// b declares the leader lost, elects itself (sole survivor) and keeps
	// committing in term 2.
	b.start(t)
	waitRole(t, b, RoleLeader)
	if ts := bLog.TermState(); ts.Term != 2 || ts.Leader != "b" {
		t.Fatalf("survivor term state = %+v", ts)
	}
	if _, err := bLog.Append(wal.Kind(7), []byte("post-takeover")); err != nil {
		t.Fatal(err)
	}

	// a restarts on its old WAL: same path, no role flags — just a member
	// pointed at the group.
	aLog2, err := wal.OpenFile(aPath)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { aLog2.Close() })
	if got := aLog2.LastLSN(); got != 5 {
		t.Fatalf("restarted leader's log ends at %d, want 5 (orphan intact)", got)
	}
	a2ORB, _ := listenORB(t)
	a2 := &testMember{o: a2ORB, log: aLog2}
	a2.g = NewGroupMember(a2ORB, aLog2, GroupConfig{
		MemberID: "a", Peers: []string{bEps[0]}, LeaderHint: bEps,
		Poll: 50 * time.Millisecond, Policy: groupTestPolicy, ElectionRetry: 20 * time.Millisecond,
	})
	a2.start(t)

	// The fenced fetch reply makes a truncate LSN 5 and stream b's term-2
	// history: term record at 5, post-takeover at 6.
	waitLSN(t, aLog2, 6)
	if a2.g.Role() != RoleFollower {
		t.Fatalf("rejoined member role = %v, want follower", a2.g.Role())
	}
	recs, err := aLog2.Records()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if string(r.Data) == "orphan" {
			t.Fatal("unreplicated orphan survived the rejoin truncation")
		}
	}
	if ts := aLog2.TermState(); ts.Term != 2 || ts.Leader != "b" || ts.Fenced {
		t.Fatalf("rejoined term state = %+v", ts)
	}
	// Byte-identical convergence.
	aRecs, _ := aLog2.Records()
	bRecs, _ := bLog.Records()
	if len(aRecs) != len(bRecs) {
		t.Fatalf("rejoined log holds %d records, leader %d", len(aRecs), len(bRecs))
	}
	for i := range aRecs {
		if aRecs[i].LSN != bRecs[i].LSN || string(aRecs[i].Data) != string(bRecs[i].Data) {
			t.Fatalf("record %d diverged: %+v vs %+v", i, aRecs[i], bRecs[i])
		}
	}
}

// TestFencedDeposedLeaderAppendRejected deposes a live leader via a
// claim for a higher term: its in-flight append must fail ErrFenced, the
// decision gate must veto with the FENCED system exception, and the
// rejected payload must never appear in any replica's log.
func TestFencedDeposedLeaderAppendRejected(t *testing.T) {
	aLog := seedLog(t, 2)
	aORB, aEps := listenORB(t)
	a := &testMember{o: aORB, log: aLog, eps: aEps}
	demoted := make(chan uint64, 1)
	a.g = NewGroupMember(aORB, aLog, GroupConfig{
		MemberID: "a",
		OnDemote: func(term uint64, _ string) { demoted <- term },
	})
	if err := a.g.Promote(context.Background()); err != nil {
		t.Fatal(err)
	}

	// b holds the same history (same epoch, same LSNs) and claims term 2.
	bLog := seedLog(t, 2)
	if _, err := bLog.AdoptTerm(1, "a"); err != nil { // mirror a's term record
		t.Fatal(err)
	}
	bORB, bEps := listenORB(t)
	b := &testMember{o: bORB, log: bLog, eps: bEps}
	b.g = NewGroupMember(bORB, bLog, GroupConfig{MemberID: "b", Peers: []string{aEps[0]}})
	ctx := context.Background()
	if !b.g.claimFrom(ctx, []peerState{{endpoint: aEps[0]}}, 2, bLog.LastLSN()) {
		t.Fatal("claim for term 2 rejected")
	}
	if err := b.g.becomeLeader(ctx, 2); err != nil {
		t.Fatal(err)
	}

	// The deposed leader's in-flight append is rejected FENCED.
	if _, err := aLog.Append(wal.Kind(7), []byte("late-decision")); !errors.Is(err, wal.ErrFenced) {
		t.Fatalf("deposed append = %v, want ErrFenced", err)
	}
	if err := a.g.Primary().DecisionGate(time.Second)(aLog.LastLSN()); !orb.IsSystem(err, orb.CodeFenced) {
		t.Fatalf("decision gate on deposed leader = %v, want FENCED", err)
	}
	select {
	case term := <-demoted:
		if term != 2 {
			t.Fatalf("demoted for term %d, want 2", term)
		}
	case <-time.After(time.Second):
		t.Fatal("OnDemote never fired")
	}
	if a.g.Role() != RoleFollower {
		t.Fatalf("deposed leader role = %v, want follower", a.g.Role())
	}

	// The rejected payload appears in no replica's log — including the
	// deposed leader's own after it rejoins the new term.
	a.start(t)
	waitLSN(t, aLog, bLog.LastLSN())
	for name, l := range map[string]*wal.Log{"a": aLog, "b": bLog} {
		recs, err := l.Records()
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range recs {
			if string(r.Data) == "late-decision" {
				t.Fatalf("rejected append surfaced in %s's log", name)
			}
		}
	}
	if ts := aLog.TermState(); ts.Term != 2 || ts.Fenced {
		t.Fatalf("rejoined deposed leader term state = %+v", ts)
	}
}

// TestElectionRequiresQuorum isolates a member from its whole electorate:
// with two configured peers the quorum is two and its own vote is one, so
// however long it retries it must never claim a term — a partitioned
// minority promoting itself is exactly the two-concurrent-leaders split
// the majority-accept rule exists to prevent.
func TestElectionRequiresQuorum(t *testing.T) {
	dead1, dead2 := deadEndpoint(t), deadEndpoint(t)
	log := seedLog(t, 2)
	o, _ := listenORB(t)
	m := &testMember{o: o, log: log}
	m.g = NewGroupMember(o, log, GroupConfig{
		MemberID: "minority", Peers: []string{dead1, dead2}, LeaderHint: []string{dead1},
		Poll:          50 * time.Millisecond,
		Policy:        groupTestPolicy,
		ElectionRetry: 20 * time.Millisecond,
		ProbeTimeout:  100 * time.Millisecond,
	})
	m.start(t)

	// Give it many election rounds' worth of time to (wrongly) promote.
	time.Sleep(600 * time.Millisecond)
	if got := m.g.Role(); got != RoleFollower {
		t.Fatalf("partitioned minority member role = %v, want follower (no quorum)", got)
	}
	if got := log.KnownTerm(); got != 0 {
		t.Fatalf("partitioned minority member adopted term %d with no quorum", got)
	}
}

// TestElectionClaimEpochOrdering pins the claim acceptance order to
// (epoch, LSN) lexicographic: a claimant whose epoch is behind the
// voter's does not subsume the voter's history no matter how high its
// raw LSN (its log stopped on an older line), while a claimant on a
// newer epoch is accepted even with a smaller LSN.
func TestElectionClaimEpochOrdering(t *testing.T) {
	// The voter has checkpointed: epoch 1, two records surviving.
	log := seedLog(t, 3)
	if err := log.Checkpoint(func(r wal.Record) bool { return r.LSN >= 2 }); err != nil {
		t.Fatal(err)
	}
	o, _ := listenORB(t)
	g := NewGroupMember(o, log, GroupConfig{MemberID: "voter"})

	// Stale epoch, higher LSN: rejected, and the voter stays unfenced.
	err := g.handleClaim(1, "stale", 0, 99, []string{"tcp:127.0.0.1:1"})
	if !orb.IsSystem(err, orb.CodeFenced) {
		t.Fatalf("stale-epoch claim = %v, want FENCED", err)
	}
	if log.Fenced() {
		t.Fatal("rejected claim fenced the voter")
	}
	// Same epoch, shorter log: rejected.
	err = g.handleClaim(1, "short", 1, log.LastLSN()-1, []string{"tcp:127.0.0.1:1"})
	if !orb.IsSystem(err, orb.CodeFenced) {
		t.Fatalf("shorter same-epoch claim = %v, want FENCED", err)
	}
	// Newer epoch, lower LSN: the claimant resynchronised past a
	// checkpoint the voter has not seen; accepted and repointed.
	if err := g.handleClaim(1, "newer", 2, 1, []string{"tcp:127.0.0.1:1"}); err != nil {
		t.Fatalf("newer-epoch claim = %v, want accepted", err)
	}
	if id, _ := g.Leader(); id != "newer" {
		t.Fatalf("voter follows %q after accepted claim, want newer", id)
	}
}

// TestGroupTakeoverReplicatesThroughNewLeader proves the group keeps
// working after an election: the new leader's appends reach the
// surviving follower through the same stream, and a quorum barrier
// (WaitForAckN) releases against the follower's acks.
func TestGroupTakeoverReplicatesThroughNewLeader(t *testing.T) {
	dead := deadEndpoint(t)
	bLog, cLog := seedLog(t, 2), seedLog(t, 2)
	bORB, bEps := listenORB(t)
	cORB, cEps := listenORB(t)
	b := &testMember{o: bORB, log: bLog, eps: bEps}
	c := &testMember{o: cORB, log: cLog, eps: cEps}
	b.g = NewGroupMember(bORB, bLog, GroupConfig{
		MemberID: "b", Peers: []string{cEps[0]}, LeaderHint: []string{dead},
		Poll: 50 * time.Millisecond, Policy: groupTestPolicy, ElectionRetry: 20 * time.Millisecond,
	})
	c.g = NewGroupMember(cORB, cLog, GroupConfig{
		MemberID: "c", Peers: []string{bEps[0]}, LeaderHint: []string{dead},
		Poll: 50 * time.Millisecond, Policy: groupTestPolicy, ElectionRetry: 20 * time.Millisecond,
	})
	b.start(t)
	c.start(t)
	waitRole(t, b, RoleLeader)

	lsn, err := bLog.Append(wal.Kind(7), []byte("post-election-decision"))
	if err != nil {
		t.Fatal(err)
	}
	if !b.g.Primary().WaitForAckN(lsn, 1, 5*time.Second) {
		t.Fatalf("new leader never saw the follower ack LSN %d", lsn)
	}
	waitLSN(t, cLog, lsn)
}

// TestInstallSnapshotDuringParkedFetch races an epoch bump against a
// parked long-poll: the follower's fetch is parked on the primary when a
// checkpoint moves the epoch, and the follower must resynchronise from a
// snapshot instead of mixing records across epochs.
func TestInstallSnapshotDuringParkedFetch(t *testing.T) {
	primaryLog := wal.NewMemory()
	for i := 0; i < 4; i++ {
		if _, err := primaryLog.Append(wal.Kind(7), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	_, _, endpoints := startPrimary(t, primaryLog)

	followerORB := orb.New()
	t.Cleanup(followerORB.Shutdown)
	followerLog := wal.NewMemory()
	f := NewReplicationFollower(followerORB, ReplicationAt(endpoints...), followerLog,
		WithPollTimeout(10*time.Second), WithFollowerID("f"))

	// Catch up, then park the next fetch on the primary's long poll.
	ctx := context.Background()
	if _, err := f.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	waitLSN(t, followerLog, 4)
	parked := make(chan error, 1)
	go func() {
		_, err := f.Sync(ctx)
		parked <- err
	}()
	time.Sleep(100 * time.Millisecond) // let the fetch park

	// The epoch bump lands mid-poll: checkpoint away everything but the
	// last record, then append into the new epoch.
	if err := primaryLog.Checkpoint(func(r wal.Record) bool { return r.LSN >= 4 }); err != nil {
		t.Fatal(err)
	}
	if _, err := primaryLog.Append(wal.Kind(7), []byte("new-epoch")); err != nil {
		t.Fatal(err)
	}

	if err := <-parked; err != nil {
		t.Fatalf("parked fetch after epoch bump: %v", err)
	}
	// One more round if the resync raced the post-checkpoint append.
	waitLSN(t, followerLog, 5)
	deadline := time.Now().Add(5 * time.Second)
	for {
		fe, fn := followerLog.State()
		pe, pn := primaryLog.State()
		if fe == pe && fn == pn {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower at epoch %d next %d, primary %d %d", fe, fn, pe, pn)
		}
		if _, err := f.Sync(ctx); err != nil {
			t.Fatal(err)
		}
	}
}

// atomic32 is a tiny test counter.
type atomic32 struct {
	mu sync.Mutex
	n  int
}

func (a *atomic32) inc() {
	a.mu.Lock()
	a.n++
	a.mu.Unlock()
}

func (a *atomic32) load() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.n
}
