package remote

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"github.com/extendedtx/activityservice/internal/orb"
	"github.com/extendedtx/activityservice/internal/ots"
	"github.com/extendedtx/activityservice/internal/wal"
)

// heuristicResource answers phase two with a heuristic sentinel.
type heuristicResource struct {
	slotResource
	outcome error
}

func (h *heuristicResource) Commit() error {
	h.set("rolledback")
	return fmt.Errorf("resolved unilaterally: %w", h.outcome)
}

// startParticipant exports a resource on its own listening ORB and returns
// the re-minted reference.
func startParticipant(t *testing.T, r ots.Resource) orb.IOR {
	t.Helper()
	node := orb.New()
	t.Cleanup(node.Shutdown)
	ref := ExportResource(node, r)
	if _, err := node.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	ref, _ = node.IOR(ref.Key)
	return ref
}

func TestWireReplayCompletion(t *testing.T) {
	// Coordinator: durable log, two remote participants, full commit.
	coordORB := orb.New()
	t.Cleanup(coordORB.Shutdown)
	log := wal.NewMemory()
	svc := ots.NewService(ots.WithLog(log), ots.WithRetryPolicy(2, 10*time.Millisecond))

	a, b := &slotResource{vote: ots.VoteCommit}, &slotResource{vote: ots.VoteCommit}
	refA, refB := startParticipant(t, a), startParticipant(t, b)
	tx := svc.Begin()
	_ = tx.RegisterResource(ImportResource(coordORB, refA))
	_ = tx.RegisterResource(ImportResource(coordORB, refB))
	if err := tx.Commit(true); err != nil {
		t.Fatal(err)
	}

	// The coordinator serves recovery; a restarted participant asks for its
	// outcome over the wire using its own recovery name (its IOR string).
	recoveryRef := ServeRecovery(coordORB, svc)
	if _, err := coordORB.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	recoveryRef, _ = coordORB.IOR(recoveryRef.Key)

	participantORB := orb.New()
	t.Cleanup(participantORB.Shutdown)
	rc := NewRecoveryClient(participantORB, recoveryRef)
	ctx := context.Background()

	st, err := rc.ReplayCompletion(ctx, refA.String())
	if err != nil {
		t.Fatal(err)
	}
	if st != ots.StatusCommitted {
		t.Fatalf("replay_completion(%s) = %s, want committed", refA.Key, st)
	}
	// A name from a transaction whose decision never became durable is
	// presumed aborted.
	st, err = rc.ReplayCompletion(ctx, "IOR:tcp:203.0.113.9:1|T|never-prepared")
	if err != nil {
		t.Fatal(err)
	}
	if st != ots.StatusRolledBack {
		t.Fatalf("unknown name status = %s, want rolled-back", st)
	}

	// RecoveryAt rebuilds the same well-known reference from endpoints.
	rc2 := NewRecoveryClient(participantORB, RecoveryAt(coordORB.Endpoints()...))
	st, err = rc2.ReplayCompletion(ctx, refB.String())
	if err != nil {
		t.Fatal(err)
	}
	if st != ots.StatusCommitted {
		t.Fatalf("well-known ref status = %s, want committed", st)
	}
}

func TestRemoteRecoverVerbRedelivers(t *testing.T) {
	// A coordinator restart: the new service knows only the log. The wire
	// "recover" verb drives redelivery and reports the pass stats.
	log := wal.NewMemory()
	coordORB := orb.New()
	t.Cleanup(coordORB.Shutdown)
	svc := ots.NewService(ots.WithLog(log), ots.WithRetryPolicy(2, 10*time.Millisecond))

	a, b := &slotResource{vote: ots.VoteCommit}, &slotResource{vote: ots.VoteCommit}
	refA, refB := startParticipant(t, a), startParticipant(t, b)
	tx := svc.Begin()
	_ = tx.RegisterResource(ImportResource(coordORB, refA))
	_ = tx.RegisterResource(ImportResource(coordORB, refB))
	if err := tx.Commit(true); err != nil {
		t.Fatal(err)
	}

	// Keep only the decision record: the crash happened before phase two.
	recs, _ := log.Records()
	crashLog := wal.NewMemory()
	if _, err := crashLog.Append(recs[0].Kind, recs[0].Data); err != nil {
		t.Fatal(err)
	}
	a.set("prepared")
	b.set("prepared")

	coordORB2 := orb.New()
	t.Cleanup(coordORB2.Shutdown)
	svc2 := ots.NewService(ots.WithLog(crashLog), ots.WithRetryPolicy(2, 10*time.Millisecond))
	names, err := svc2.InDoubtResources()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 {
		t.Fatalf("in-doubt names = %v", names)
	}
	if err := BindRemoteResources(coordORB2, svc2.Directory(), names); err != nil {
		t.Fatal(err)
	}
	recoveryRef := ServeRecovery(coordORB2, svc2)
	if _, err := coordORB2.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	recoveryRef, _ = coordORB2.IOR(recoveryRef.Key)

	toolORB := orb.New()
	t.Cleanup(toolORB.Shutdown)
	rc := NewRecoveryClient(toolORB, recoveryRef)
	ctx := context.Background()
	stats, err := rc.Recover(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.DecisionsReplayed != 1 || stats.ResourcesCommitted != 2 || stats.ResourcesFailed != 0 {
		t.Fatalf("stats = %+v", stats)
	}
	if a.State() != "committed" || b.State() != "committed" {
		t.Fatalf("participants = %s / %s", a.State(), b.State())
	}
	totals, err := rc.Totals(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if totals.Passes != 1 || totals.ResourcesCommitted != 2 || totals.PendingDecisions != 0 {
		t.Fatalf("totals = %+v", totals)
	}
}

func TestRemoteHeuristicCrossesWire(t *testing.T) {
	// A remote participant's heuristic outcome must reach the coordinator
	// as the sentinel — not as a generic delivery failure — so it is
	// aggregated as damage and recorded durably under the participant's
	// recovery name.
	coordORB := orb.New()
	t.Cleanup(coordORB.Shutdown)
	log := wal.NewMemory()
	svc := ots.NewService(ots.WithLog(log), ots.WithRetryPolicy(1, 0))

	loyal := &slotResource{vote: ots.VoteCommit}
	rogue := &heuristicResource{slotResource: slotResource{vote: ots.VoteCommit}, outcome: ots.ErrHeuristicRollback}
	refLoyal, refRogue := startParticipant(t, loyal), startParticipant(t, rogue)
	tx := svc.Begin()
	_ = tx.RegisterResource(ImportResource(coordORB, refLoyal))
	_ = tx.RegisterResource(ImportResource(coordORB, refRogue))
	err := tx.Commit(true)
	if !errors.Is(err, ots.ErrHeuristicMixed) {
		t.Fatalf("commit err = %v, want ErrHeuristicMixed", err)
	}
	recs, err := svc.Heuristics()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Resource != refRogue.String() || recs[0].Outcome != ots.StatusRolledBack {
		t.Fatalf("heuristics = %+v", recs)
	}
	// Heuristic participants are resolved: the decision sealed, no replay.
	stats, err := svc.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if stats.DecisionsReplayed != 0 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestAdminRecoveryStatsScrape(t *testing.T) {
	coordORB := orb.New()
	t.Cleanup(coordORB.Shutdown)
	log := wal.NewMemory()
	svc := ots.NewService(ots.WithLog(log), ots.WithRetryPolicy(2, 10*time.Millisecond))
	orb.ServeAdmin(coordORB)
	ServeRecovery(coordORB, svc)
	if _, err := coordORB.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}

	a, b := &slotResource{vote: ots.VoteCommit}, &slotResource{vote: ots.VoteCommit}
	refA, refB := startParticipant(t, a), startParticipant(t, b)
	tx := svc.Begin()
	_ = tx.RegisterResource(ImportResource(coordORB, refA))
	_ = tx.RegisterResource(ImportResource(coordORB, refB))
	if err := tx.Commit(true); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Recover(); err != nil {
		t.Fatal(err)
	}

	clientORB := orb.New()
	t.Cleanup(clientORB.Shutdown)
	admin := orb.NewAdminClient(clientORB, orb.AdminAt(coordORB.Endpoints()...))
	scrape, ok, err := admin.RecoveryStats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("recovery_stats reported no recovery surface")
	}
	if scrape.Passes != 1 || scrape.PendingDecisions != 0 || scrape.PendingHeuristics != 0 {
		t.Fatalf("scrape = %+v", scrape)
	}

	// An ORB without a provider answers ok=false, not an error.
	bareORB := orb.New()
	t.Cleanup(bareORB.Shutdown)
	orb.ServeAdmin(bareORB)
	if _, err := bareORB.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	bareAdmin := orb.NewAdminClient(clientORB, orb.AdminAt(bareORB.Endpoints()...))
	_, ok, err = bareAdmin.RecoveryStats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("bare ORB claimed a recovery surface")
	}
}
