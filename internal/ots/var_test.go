package ots

import (
	"errors"
	"testing"
	"time"

	"github.com/extendedtx/activityservice/internal/lockmgr"
)

const lockWait = 50 * time.Millisecond

func newTestVar(t *testing.T, initial string) (*Service, *Var) {
	t.Helper()
	return NewService(), NewVar("v", []byte(initial), lockmgr.New(), lockWait)
}

func TestVarCommitInstallsValue(t *testing.T) {
	svc, v := newTestVar(t, "old")
	tx := svc.Begin()
	if err := v.Set(tx, []byte("new")); err != nil {
		t.Fatal(err)
	}
	// Uncommitted: other observers still see the old value.
	if got := v.Committed(); string(got) != "old" {
		t.Fatalf("committed = %q before commit", got)
	}
	// The writer reads its own write.
	got, err := v.Get(tx)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "new" {
		t.Fatalf("own read = %q", got)
	}
	if err := tx.Commit(true); err != nil {
		t.Fatal(err)
	}
	if got := v.Committed(); string(got) != "new" {
		t.Fatalf("committed = %q after commit", got)
	}
}

func TestVarRollbackDiscards(t *testing.T) {
	svc, v := newTestVar(t, "orig")
	tx := svc.Begin()
	_ = v.Set(tx, []byte("doomed"))
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	if got := v.Committed(); string(got) != "orig" {
		t.Fatalf("committed = %q after rollback", got)
	}
}

func TestVarWriteConflictTimesOut(t *testing.T) {
	svc, v := newTestVar(t, "x")
	t1 := svc.Begin()
	t2 := svc.Begin()
	if err := v.Set(t1, []byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := v.Set(t2, []byte("two")); !errors.Is(err, ErrWriteConflict) {
		t.Fatalf("err = %v, want ErrWriteConflict", err)
	}
	// After t1 finishes, t2 can write.
	if err := t1.Commit(true); err != nil {
		t.Fatal(err)
	}
	if err := v.Set(t2, []byte("two")); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(true); err != nil {
		t.Fatal(err)
	}
	if got := v.Committed(); string(got) != "two" {
		t.Fatalf("committed = %q", got)
	}
}

func TestVarReadersBlockWriters(t *testing.T) {
	svc, v := newTestVar(t, "x")
	reader := svc.Begin()
	if _, err := v.Get(reader); err != nil {
		t.Fatal(err)
	}
	writer := svc.Begin()
	if err := v.Set(writer, []byte("w")); !errors.Is(err, ErrWriteConflict) {
		t.Fatalf("err = %v, want conflict while read lock held", err)
	}
	// Reader holds the lock until completion (strict 2PL).
	_ = reader.Rollback()
}

func TestVarNestedCommitPropagates(t *testing.T) {
	svc, v := newTestVar(t, "base")
	top := svc.Begin()
	sub, err := top.BeginSubtransaction()
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Set(sub, []byte("nested-write")); err != nil {
		t.Fatal(err)
	}
	if err := sub.Commit(true); err != nil {
		t.Fatal(err)
	}
	// Provisional: not yet durable.
	if got := v.Committed(); string(got) != "base" {
		t.Fatalf("committed = %q after provisional commit", got)
	}
	// The parent now sees the child's write.
	got, err := v.Get(top)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "nested-write" {
		t.Fatalf("parent read = %q", got)
	}
	if err := top.Commit(true); err != nil {
		t.Fatal(err)
	}
	if got := v.Committed(); string(got) != "nested-write" {
		t.Fatalf("committed = %q after top commit", got)
	}
}

func TestVarNestedRollbackConfined(t *testing.T) {
	svc, v := newTestVar(t, "base")
	top := svc.Begin()
	_ = v.Set(top, []byte("parent-write"))
	sub, _ := top.BeginSubtransaction()
	_ = v.Set(sub, []byte("child-write"))
	if err := sub.Rollback(); err != nil {
		t.Fatal(err)
	}
	// The parent's own write survives the child's failure.
	got, err := v.Get(top)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "parent-write" {
		t.Fatalf("parent read = %q", got)
	}
	if err := top.Commit(true); err != nil {
		t.Fatal(err)
	}
	if got := v.Committed(); string(got) != "parent-write" {
		t.Fatalf("committed = %q", got)
	}
}

func TestVarSiblingsShareFamilyLock(t *testing.T) {
	svc, v := newTestVar(t, "base")
	top := svc.Begin()
	s1, _ := top.BeginSubtransaction()
	if err := v.Set(s1, []byte("s1")); err != nil {
		t.Fatal(err)
	}
	_ = s1.Commit(true)
	s2, _ := top.BeginSubtransaction()
	// Same family: no conflict even though s1's lock is retained.
	if err := v.Set(s2, []byte("s2")); err != nil {
		t.Fatalf("sibling write conflicted: %v", err)
	}
	_ = s2.Commit(true)
	if err := top.Commit(true); err != nil {
		t.Fatal(err)
	}
	if got := v.Committed(); string(got) != "s2" {
		t.Fatalf("committed = %q", got)
	}
}

func TestVarLocksReleasedAfterCompletion(t *testing.T) {
	svc, v := newTestVar(t, "x")
	t1 := svc.Begin()
	_ = v.Set(t1, []byte("a"))
	_ = t1.Commit(true)
	t2 := svc.Begin()
	if err := v.Set(t2, []byte("b")); err != nil {
		t.Fatalf("lock leaked after commit: %v", err)
	}
	_ = t2.Rollback()
	t3 := svc.Begin()
	if err := v.Set(t3, []byte("c")); err != nil {
		t.Fatalf("lock leaked after rollback: %v", err)
	}
	_ = t3.Commit(true)
}

func TestVarNilTransactionDirectAccess(t *testing.T) {
	_, v := newTestVar(t, "x")
	if err := v.Set(nil, []byte("direct")); err != nil {
		t.Fatal(err)
	}
	got, err := v.Get(nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "direct" {
		t.Fatalf("got %q", got)
	}
}
