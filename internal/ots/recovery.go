package ots

import (
	"errors"
	"fmt"
	"sort"

	"github.com/extendedtx/activityservice/internal/ids"
	"github.com/extendedtx/activityservice/internal/wal"
)

// RecoveryStats summarises one recovery pass.
type RecoveryStats struct {
	// DecisionsReplayed counts commit decisions that were re-driven.
	DecisionsReplayed int
	// ResourcesCommitted counts participants that received commit
	// (including participants found to have heuristically committed —
	// their outcome matches the decision).
	ResourcesCommitted int
	// ResourcesMissing counts participant names with no directory binding;
	// their decisions stay in the log for a later pass.
	ResourcesMissing int
	// ResourcesFailed counts participants whose commit delivery failed
	// with an unknown outcome; their decisions stay in the log and a later
	// pass re-drives them.
	ResourcesFailed int
	// ResourcesHeuristic counts participants that reported a heuristic
	// outcome during the pass; the heuristic is recorded durably.
	ResourcesHeuristic int
}

// RecoveryTotals accumulates recovery activity across the service's
// lifetime, plus point-in-time gauges of outstanding recovery state. The
// orb-admin scrape surfaces them (see internal/remote.ServeRecovery).
type RecoveryTotals struct {
	// Passes counts completed Recover invocations.
	Passes uint64
	// DecisionsReplayed totals decisions re-driven across all passes.
	DecisionsReplayed uint64
	// ResourcesCommitted totals commit deliveries across all passes.
	ResourcesCommitted uint64
	// ResourcesMissing totals unresolvable participant names seen.
	ResourcesMissing uint64
	// ResourcesFailed totals failed commit deliveries seen.
	ResourcesFailed uint64
	// HeuristicsRecorded totals heuristic records appended to the log
	// (by live completion and by recovery passes).
	HeuristicsRecorded uint64
	// PendingDecisions gauges decisions currently lacking a done marker.
	PendingDecisions int
	// PendingHeuristics gauges heuristic records not yet forgotten.
	PendingHeuristics int
}

// logView is the decoded state of the decision log: the one shared scan
// every recovery entry point reads. It is built lazily, kept current by
// the append paths (noteDecision/noteDone/recordHeuristic) and dropped on
// checkpoint, so a recovery pass — however many Recover, ReplayCompletion
// and Heuristics calls it makes — costs a single log scan.
type logView struct {
	decisions  map[ids.UID]decisionRecord
	done       map[ids.UID]bool
	heuristics map[ids.UID][]HeuristicRecord
}

// loadViewLocked returns the cached view, scanning the log to build it if
// needed. The caller must hold s.viewMu.
func (s *Service) loadViewLocked() (*logView, error) {
	if s.view != nil {
		return s.view, nil
	}
	v := &logView{
		decisions:  make(map[ids.UID]decisionRecord),
		done:       make(map[ids.UID]bool),
		heuristics: make(map[ids.UID][]HeuristicRecord),
	}
	err := s.log.Replay(func(r wal.Record) error {
		switch r.Kind {
		case RecordDecision:
			rec, err := decodeDecision(r.Data)
			if err != nil {
				return err
			}
			v.decisions[rec.tx] = rec
		case RecordDone:
			tx, err := decodeDone(r.Data)
			if err != nil {
				return err
			}
			v.done[tx] = true
		case RecordHeuristic:
			rec, err := decodeHeuristic(r.Data)
			if err != nil {
				return err
			}
			v.heuristics[rec.Tx] = append(v.heuristics[rec.Tx], rec)
		case RecordHeuristicForget:
			tx, err := decodeDone(r.Data) // same 16-byte layout
			if err != nil {
				return err
			}
			delete(v.heuristics, tx)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("ots: scan log: %w", err)
	}
	s.view = v
	return v, nil
}

// noteDecision folds a freshly appended decision into the cached view.
func (s *Service) noteDecision(rec decisionRecord) {
	s.viewMu.Lock()
	if s.view != nil {
		s.view.decisions[rec.tx] = rec
	}
	s.viewMu.Unlock()
}

// noteDone folds a freshly appended done marker into the cached view.
func (s *Service) noteDone(tx ids.UID) {
	s.viewMu.Lock()
	if s.view != nil {
		s.view.done[tx] = true
	}
	s.viewMu.Unlock()
}

// Recover replays the decision log after a restart: every transaction with
// a durable commit decision but no done marker has commit re-delivered to
// its named participants (participants must be idempotent — delivery is
// at-least-once). Participants that were prepared but have no decision
// record are presumed aborted; they learn that via ReplayCompletion.
//
// A participant whose delivery fails keeps its decision live — no done
// marker is appended — so a later pass (or a restarted service) re-drives
// it; a participant that answers with a heuristic outcome is recorded
// durably and counts as resolved.
func (s *Service) Recover() (RecoveryStats, error) {
	var stats RecoveryStats
	if s.log == nil {
		return stats, nil
	}
	s.viewMu.Lock()
	v, err := s.loadViewLocked()
	if err != nil {
		s.viewMu.Unlock()
		return stats, err
	}
	type pending struct {
		tx    ids.UID
		names []string
	}
	var jobs []pending
	for tx, rec := range v.decisions {
		if v.done[tx] {
			continue
		}
		jobs = append(jobs, pending{tx: tx, names: append([]string(nil), rec.names...)})
	}
	s.viewMu.Unlock()

	for _, job := range jobs {
		stats.DecisionsReplayed++
		undone := false
		for _, name := range job.names {
			r, ok := s.dir.Lookup(name)
			if !ok {
				undone = true
				stats.ResourcesMissing++
				continue
			}
			carrier := &Transaction{svc: s, id: job.tx} // carrier for the retry policy
			err := carrier.deliverCommit(r)
			switch {
			case err == nil:
				stats.ResourcesCommitted++
				s.emit(Event{Tx: job.tx, Stage: StageCommitDelivered, Resource: name})
			case errors.Is(err, ErrHeuristicRollback):
				stats.ResourcesHeuristic++
				s.recordHeuristic(job.tx, name, StatusRolledBack)
			case errors.Is(err, ErrHeuristicCommit):
				stats.ResourcesCommitted++
				stats.ResourcesHeuristic++
				s.recordHeuristic(job.tx, name, StatusCommitted)
			default:
				undone = true
				stats.ResourcesFailed++
			}
		}
		if !undone {
			if _, err := s.log.Append(RecordDone, encodeDone(job.tx)); err != nil {
				s.accumulate(stats)
				return stats, fmt.Errorf("ots: recovery done record: %w", err)
			}
			s.noteDone(job.tx)
			s.emit(Event{Tx: job.tx, Stage: StageDone})
		}
	}
	s.accumulate(stats)
	return stats, nil
}

// accumulate folds one pass's stats into the lifetime totals.
func (s *Service) accumulate(stats RecoveryStats) {
	s.totMu.Lock()
	s.totals.Passes++
	s.totals.DecisionsReplayed += uint64(stats.DecisionsReplayed)
	s.totals.ResourcesCommitted += uint64(stats.ResourcesCommitted)
	s.totals.ResourcesMissing += uint64(stats.ResourcesMissing)
	s.totals.ResourcesFailed += uint64(stats.ResourcesFailed)
	s.totMu.Unlock()
}

// RecoveryTotals reports the lifetime recovery counters plus gauges of the
// outstanding recovery state (decisions without a done marker, heuristic
// records not yet forgotten). Gauges read the shared log view; if the log
// cannot be scanned they are zero.
func (s *Service) RecoveryTotals() RecoveryTotals {
	s.totMu.Lock()
	t := s.totals
	s.totMu.Unlock()
	if s.log == nil {
		return t
	}
	s.viewMu.Lock()
	defer s.viewMu.Unlock()
	v, err := s.loadViewLocked()
	if err != nil {
		return t
	}
	for tx := range v.decisions {
		if !v.done[tx] {
			t.PendingDecisions++
		}
	}
	for _, recs := range v.heuristics {
		t.PendingHeuristics += len(recs)
	}
	return t
}

// ReplayCompletion tells a prepared participant its transaction's outcome:
// StatusCommitted when a durable commit decision names it, otherwise
// StatusRolledBack (presumed abort).
//
// The answer stays consistent with the checkpointing rules: a name in a
// decision that already has a done marker still answers StatusCommitted —
// the record is durable until CheckpointLog compacts it away — and only
// after the checkpoint drops the pair does the name fall back to presumed
// abort (by then every named participant has acknowledged commit, so no
// correct participant is left to ask).
func (s *Service) ReplayCompletion(resourceName string) (Status, error) {
	if s.log == nil {
		return StatusRolledBack, nil
	}
	s.viewMu.Lock()
	defer s.viewMu.Unlock()
	v, err := s.loadViewLocked()
	if err != nil {
		return StatusRolledBack, err
	}
	for _, rec := range v.decisions {
		for _, n := range rec.names {
			if n == resourceName {
				return StatusCommitted, nil
			}
		}
	}
	return StatusRolledBack, nil
}

// InDoubtResources returns, sorted and deduplicated, the recovery names
// appearing in commit decisions that have no done marker — the
// participants a restarted coordinator must re-bind (for remote
// participants, via BindRemoteResources) before calling Recover.
func (s *Service) InDoubtResources() ([]string, error) {
	if s.log == nil {
		return nil, nil
	}
	s.viewMu.Lock()
	defer s.viewMu.Unlock()
	v, err := s.loadViewLocked()
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool)
	var out []string
	for tx, rec := range v.decisions {
		if v.done[tx] {
			continue
		}
		for _, n := range rec.names {
			if n != "" && !seen[n] {
				seen[n] = true
				out = append(out, n)
			}
		}
	}
	sort.Strings(out)
	return out, nil
}

// Heuristics returns the recorded heuristic outcomes that have not been
// forgotten, ordered by transaction then resource name. They survive
// restart: the records live in the decision log until ForgetHeuristics
// acknowledges them and a checkpoint compacts them away.
func (s *Service) Heuristics() ([]HeuristicRecord, error) {
	if s.log == nil {
		return nil, nil
	}
	s.viewMu.Lock()
	defer s.viewMu.Unlock()
	v, err := s.loadViewLocked()
	if err != nil {
		return nil, err
	}
	var out []HeuristicRecord
	for _, recs := range v.heuristics {
		out = append(out, recs...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Tx != out[j].Tx {
			return out[i].Tx.String() < out[j].Tx.String()
		}
		return out[i].Resource < out[j].Resource
	})
	return out, nil
}

// ForgetHeuristics acknowledges a transaction's recorded heuristic
// outcomes: a durable forget marker stops them being reported (and lets
// the next checkpoint drop them), and participants still bound in the
// directory receive Forget so they may discard their own heuristic state.
// Calling it for a transaction with no recorded heuristics is a no-op.
func (s *Service) ForgetHeuristics(tx ids.UID) error {
	if s.log == nil {
		return nil
	}
	s.viewMu.Lock()
	v, err := s.loadViewLocked()
	if err != nil {
		s.viewMu.Unlock()
		return err
	}
	recs := v.heuristics[tx]
	if len(recs) == 0 {
		s.viewMu.Unlock()
		return nil
	}
	if _, err := s.log.Append(RecordHeuristicForget, encodeDone(tx)); err != nil {
		s.viewMu.Unlock()
		return fmt.Errorf("ots: heuristic forget record: %w", err)
	}
	delete(v.heuristics, tx)
	s.viewMu.Unlock()

	for _, rec := range recs {
		if r, ok := s.dir.Lookup(rec.Resource); ok {
			_ = r.Forget()
		}
	}
	return nil
}

// CheckpointLog compacts the decision log: decision/done pairs whose done
// marker is present are dropped, as are heuristic records that have been
// forgotten (and the forget markers themselves, once applied). Records
// owned by other subsystems sharing the log are kept.
func (s *Service) CheckpointLog() error {
	if s.log == nil {
		return nil
	}
	s.viewMu.Lock()
	defer s.viewMu.Unlock()
	v, err := s.loadViewLocked()
	if err != nil {
		return err
	}
	err = s.log.Checkpoint(func(r wal.Record) bool {
		switch r.Kind {
		case RecordDecision:
			rec, err := decodeDecision(r.Data)
			if err != nil {
				return false
			}
			return !v.done[rec.tx]
		case RecordDone:
			tx, err := decodeDone(r.Data)
			if err != nil {
				return false
			}
			// A done marker is only needed while its decision remains.
			return !v.done[tx]
		case RecordHeuristic:
			rec, err := decodeHeuristic(r.Data)
			if err != nil {
				return false
			}
			return len(v.heuristics[rec.Tx]) > 0
		case RecordHeuristicForget:
			// Applied during the scan; its targets are dropped with it.
			return false
		default:
			// Records owned by other subsystems sharing the log are kept.
			return true
		}
	})
	// The compacted log is the new truth; rebuild the view on next use.
	s.view = nil
	return err
}
