package ots

import (
	"fmt"

	"github.com/extendedtx/activityservice/internal/ids"
	"github.com/extendedtx/activityservice/internal/wal"
)

// RecoveryStats summarises one recovery pass.
type RecoveryStats struct {
	// DecisionsReplayed counts commit decisions that were re-driven.
	DecisionsReplayed int
	// ResourcesCommitted counts participants that received commit.
	ResourcesCommitted int
	// ResourcesMissing counts participant names with no directory binding;
	// their decisions stay in the log for a later pass.
	ResourcesMissing int
}

// Recover replays the decision log after a restart: every transaction with
// a durable commit decision but no done marker has commit re-delivered to
// its named participants (participants must be idempotent — delivery is
// at-least-once). Participants that were prepared but have no decision
// record are presumed aborted; they learn that via ReplayCompletion.
func (s *Service) Recover() (RecoveryStats, error) {
	var stats RecoveryStats
	if s.log == nil {
		return stats, nil
	}
	decisions, done, err := s.scanLog()
	if err != nil {
		return stats, err
	}
	for tx, rec := range decisions {
		if done[tx] {
			continue
		}
		stats.DecisionsReplayed++
		missing := false
		for _, name := range rec.names {
			r, ok := s.dir.Lookup(name)
			if !ok {
				missing = true
				stats.ResourcesMissing++
				continue
			}
			t := &Transaction{svc: s} // carrier for the retry policy
			if err := t.deliverCommit(r); err != nil {
				missing = true
				continue
			}
			stats.ResourcesCommitted++
		}
		if !missing {
			if _, err := s.log.Append(RecordDone, encodeDone(tx)); err != nil {
				return stats, fmt.Errorf("ots: recovery done record: %w", err)
			}
		}
	}
	return stats, nil
}

// ReplayCompletion tells a prepared participant its transaction's outcome:
// StatusCommitted when a durable commit decision names it, otherwise
// StatusRolledBack (presumed abort).
func (s *Service) ReplayCompletion(resourceName string) (Status, error) {
	if s.log == nil {
		return StatusRolledBack, nil
	}
	decisions, _, err := s.scanLog()
	if err != nil {
		return StatusRolledBack, err
	}
	for _, rec := range decisions {
		for _, n := range rec.names {
			if n == resourceName {
				return StatusCommitted, nil
			}
		}
	}
	return StatusRolledBack, nil
}

// CheckpointLog compacts the decision log, dropping decisions whose done
// marker is present.
func (s *Service) CheckpointLog() error {
	if s.log == nil {
		return nil
	}
	_, done, err := s.scanLog()
	if err != nil {
		return err
	}
	return s.log.Checkpoint(func(r wal.Record) bool {
		switch r.Kind {
		case RecordDecision:
			rec, err := decodeDecision(r.Data)
			if err != nil {
				return false
			}
			return !done[rec.tx]
		case RecordDone:
			tx, err := decodeDone(r.Data)
			if err != nil {
				return false
			}
			// A done marker is only needed while its decision remains.
			return !done[tx]
		default:
			// Records owned by other subsystems sharing the log are kept.
			return true
		}
	})
}

func (s *Service) scanLog() (map[ids.UID]decisionRecord, map[ids.UID]bool, error) {
	decisions := make(map[ids.UID]decisionRecord)
	done := make(map[ids.UID]bool)
	err := s.log.Replay(func(r wal.Record) error {
		switch r.Kind {
		case RecordDecision:
			rec, err := decodeDecision(r.Data)
			if err != nil {
				return err
			}
			decisions[rec.tx] = rec
		case RecordDone:
			tx, err := decodeDone(r.Data)
			if err != nil {
				return err
			}
			done[tx] = true
		}
		return nil
	})
	if err != nil {
		return nil, nil, fmt.Errorf("ots: scan log: %w", err)
	}
	return decisions, done, nil
}
