package ots

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"github.com/extendedtx/activityservice/internal/wal"
)

// heuristicDurable is a durableResource that unilaterally resolved after
// voting: phase-two delivery answers with the configured heuristic
// sentinel instead of obeying the coordinator.
type heuristicDurable struct {
	*durableResource
	outcome    error // ErrHeuristicCommit or ErrHeuristicRollback
	mu         sync.Mutex
	forgetSeen int
}

func (h *heuristicDurable) Commit() error {
	if errors.Is(h.outcome, ErrHeuristicCommit) {
		h.set("committed")
	} else {
		h.set("rolledback")
	}
	return fmt.Errorf("resource resolved unilaterally: %w", h.outcome)
}

func (h *heuristicDurable) Rollback() error {
	if errors.Is(h.outcome, ErrHeuristicCommit) {
		h.set("committed")
		return fmt.Errorf("resource resolved unilaterally: %w", h.outcome)
	}
	return h.durableResource.Rollback()
}

func (h *heuristicDurable) Forget() error {
	h.mu.Lock()
	h.forgetSeen++
	h.mu.Unlock()
	return nil
}

func (h *heuristicDurable) forgets() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.forgetSeen
}

// TestHeuristicRollbackRecordedDurably: a participant that heuristically
// rolled back on the commit path is heuristic damage — the terminator sees
// ErrHeuristicMixed, the outcome is recorded in the WAL, and the decision
// still seals (the participant is resolved, just divergently).
func TestHeuristicRollbackRecordedDurably(t *testing.T) {
	log := wal.NewMemory()
	svc := NewService(WithLog(log), WithRetryPolicy(1, 0))
	disk := map[string]string{}
	rogue := &heuristicDurable{durableResource: newDurable("rogue", &disk), outcome: ErrHeuristicRollback}
	tx := svc.Begin()
	_ = tx.RegisterResource(newDurable("loyal", &disk))
	_ = tx.RegisterResource(rogue)
	err := tx.Commit(true)
	if !errors.Is(err, ErrHeuristicMixed) {
		t.Fatalf("commit err = %v, want ErrHeuristicMixed", err)
	}

	recs, err := svc.Heuristics()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Resource != "rogue" || recs[0].Outcome != StatusRolledBack || recs[0].Tx != tx.ID() {
		t.Fatalf("heuristics = %+v", recs)
	}
	// The heuristic participant is resolved, so the decision seals: no
	// replay on recovery.
	stats, err := svc.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if stats.DecisionsReplayed != 0 {
		t.Fatalf("stats = %+v, want no replays", stats)
	}
}

// TestHeuristicCommitOnRollbackPathRecorded: a participant that
// heuristically committed while being told to roll back is recorded too
// (the classic heuristic-commit damage case).
func TestHeuristicCommitOnRollbackPathRecorded(t *testing.T) {
	log := wal.NewMemory()
	svc := NewService(WithLog(log), WithRetryPolicy(1, 0))
	disk := map[string]string{}
	rogue := &heuristicDurable{durableResource: newDurable("rogue", &disk), outcome: ErrHeuristicCommit}
	tx := svc.Begin()
	_ = tx.RegisterResource(newDurable("loyal", &disk))
	_ = tx.RegisterResource(rogue)
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	recs, err := svc.Heuristics()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Resource != "rogue" || recs[0].Outcome != StatusCommitted {
		t.Fatalf("heuristics = %+v", recs)
	}
}

// TestHeuristicSurvivesRestartUntilForget: the recorded heuristic must be
// visible after a restart, disappear on ForgetHeuristics (which also
// delivers Forget to the bound participant), and be compacted away by the
// next checkpoint.
func TestHeuristicSurvivesRestartUntilForget(t *testing.T) {
	log := wal.NewMemory()
	svc := NewService(WithLog(log), WithRetryPolicy(1, 0))
	disk := map[string]string{}
	rogue := &heuristicDurable{durableResource: newDurable("rogue", &disk), outcome: ErrHeuristicRollback}
	tx := svc.Begin()
	_ = tx.RegisterResource(newDurable("loyal", &disk))
	_ = tx.RegisterResource(rogue)
	if err := tx.Commit(true); !errors.Is(err, ErrHeuristicMixed) {
		t.Fatalf("commit err = %v", err)
	}

	// Restart.
	snap, err := log.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	log2, err := wal.OpenMemory(snap)
	if err != nil {
		t.Fatal(err)
	}
	svc2 := NewService(WithLog(log2))
	rogue2 := &heuristicDurable{durableResource: newDurable("rogue", &disk), outcome: ErrHeuristicRollback}
	svc2.Directory().Register("rogue", rogue2)
	recs, err := svc2.Heuristics()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Resource != "rogue" {
		t.Fatalf("post-restart heuristics = %+v", recs)
	}
	if tot := svc2.RecoveryTotals(); tot.PendingHeuristics != 1 {
		t.Fatalf("totals = %+v, want 1 pending heuristic", tot)
	}

	// Forget: record acknowledged, participant told, reporting stops.
	if err := svc2.ForgetHeuristics(recs[0].Tx); err != nil {
		t.Fatal(err)
	}
	if rogue2.forgets() != 1 {
		t.Fatalf("forget delivered %d times, want 1", rogue2.forgets())
	}
	recs, err = svc2.Heuristics()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("post-forget heuristics = %+v", recs)
	}
	// Forgetting again is a no-op (no second Forget delivery).
	if err := svc2.ForgetHeuristics(tx.ID()); err != nil {
		t.Fatal(err)
	}
	if rogue2.forgets() != 1 {
		t.Fatalf("forget delivered %d times after no-op, want 1", rogue2.forgets())
	}

	// Checkpoint compacts the heuristic and forget records away.
	if err := svc2.CheckpointLog(); err != nil {
		t.Fatal(err)
	}
	raw, err := log2.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) != 0 {
		kinds := make([]wal.Kind, len(raw))
		for i, r := range raw {
			kinds[i] = r.Kind
		}
		t.Fatalf("post-checkpoint kinds = %v, want empty", kinds)
	}
}

// TestCheckpointKeepsUnforgottenHeuristics: a checkpoint must NOT drop
// heuristic records that have not been acknowledged, even when their
// transaction's decision/done pair is compacted.
func TestCheckpointKeepsUnforgottenHeuristics(t *testing.T) {
	log := wal.NewMemory()
	svc := NewService(WithLog(log), WithRetryPolicy(1, 0))
	disk := map[string]string{}
	rogue := &heuristicDurable{durableResource: newDurable("rogue", &disk), outcome: ErrHeuristicRollback}
	tx := svc.Begin()
	_ = tx.RegisterResource(newDurable("loyal", &disk))
	_ = tx.RegisterResource(rogue)
	if err := tx.Commit(true); !errors.Is(err, ErrHeuristicMixed) {
		t.Fatalf("commit err = %v", err)
	}
	if err := svc.CheckpointLog(); err != nil {
		t.Fatal(err)
	}
	raw, err := log.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) != 1 || raw[0].Kind != RecordHeuristic {
		kinds := make([]wal.Kind, len(raw))
		for i, r := range raw {
			kinds[i] = r.Kind
		}
		t.Fatalf("post-checkpoint kinds = %v, want one heuristic record", kinds)
	}
	// And it is still reported from the rebuilt view.
	recs, err := svc.Heuristics()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Resource != "rogue" {
		t.Fatalf("heuristics = %+v", recs)
	}
}

// TestHeuristicCommitOnCommitPathConverges: a participant that
// heuristically committed when told to commit agrees with the decision —
// no damage, no error, but the unilateral act is still recorded.
func TestHeuristicCommitOnCommitPathConverges(t *testing.T) {
	log := wal.NewMemory()
	svc := NewService(WithLog(log), WithRetryPolicy(1, 0))
	disk := map[string]string{}
	eager := &heuristicDurable{durableResource: newDurable("eager", &disk), outcome: ErrHeuristicCommit}
	tx := svc.Begin()
	_ = tx.RegisterResource(newDurable("loyal", &disk))
	_ = tx.RegisterResource(eager)
	if err := tx.Commit(true); err != nil {
		t.Fatalf("commit err = %v, want nil (outcome matches decision)", err)
	}
	if tx.Status() != StatusCommitted {
		t.Fatalf("status = %s", tx.Status())
	}
	recs, err := svc.Heuristics()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Outcome != StatusCommitted {
		t.Fatalf("heuristics = %+v", recs)
	}
	// Resolved participants: the decision seals normally.
	stats, err := svc.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if stats.DecisionsReplayed != 0 {
		t.Fatalf("stats = %+v", stats)
	}
}

// TestHeuristicRecordRoundTrip pins the WAL encoding of heuristic records.
func TestHeuristicRecordRoundTrip(t *testing.T) {
	svcGen := NewService()
	tx := svcGen.Begin()
	in := HeuristicRecord{Tx: tx.ID(), Resource: "IOR:tcp:1.2.3.4:5|T|k", Outcome: StatusRolledBack}
	out, err := decodeHeuristic(encodeHeuristic(in))
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip = %+v, want %+v", out, in)
	}
	if _, err := decodeHeuristic(encodeHeuristic(in)[:8]); err == nil {
		t.Fatal("short heuristic record accepted")
	}
}
