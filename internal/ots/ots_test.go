package ots

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// fakeResource is a scriptable participant that records protocol calls.
type fakeResource struct {
	mu sync.Mutex

	name       string
	vote       Vote
	prepareErr error
	commitErr  error
	// commitFailures makes the first n Commit calls fail, then succeed.
	commitFailures int

	calls []string
}

func newFake(name string) *fakeResource {
	return &fakeResource{name: name, vote: VoteCommit}
}

func (f *fakeResource) record(call string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.calls = append(f.calls, call)
}

func (f *fakeResource) Calls() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]string(nil), f.calls...)
}

func (f *fakeResource) Prepare() (Vote, error) {
	f.record("prepare")
	return f.vote, f.prepareErr
}

func (f *fakeResource) Commit() error {
	f.record("commit")
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.commitFailures > 0 {
		f.commitFailures--
		return fmt.Errorf("transient commit failure on %s", f.name)
	}
	return f.commitErr
}

func (f *fakeResource) Rollback() error {
	f.record("rollback")
	return nil
}

func (f *fakeResource) CommitOnePhase() error {
	f.record("commit_one_phase")
	return f.commitErr
}

func (f *fakeResource) Forget() error {
	f.record("forget")
	return nil
}

func (f *fakeResource) RecoveryName() string { return f.name }

func TestEmptyTransactionCommits(t *testing.T) {
	svc := NewService()
	tx := svc.Begin()
	if err := tx.Commit(true); err != nil {
		t.Fatal(err)
	}
	if tx.Status() != StatusCommitted {
		t.Fatalf("status = %s", tx.Status())
	}
	if svc.Inflight() != 0 {
		t.Fatalf("inflight = %d", svc.Inflight())
	}
}

func TestOnePhaseOptimisation(t *testing.T) {
	svc := NewService()
	tx := svc.Begin()
	r := newFake("solo")
	if err := tx.RegisterResource(r); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(true); err != nil {
		t.Fatal(err)
	}
	calls := r.Calls()
	if len(calls) != 1 || calls[0] != "commit_one_phase" {
		t.Fatalf("calls = %v, want single commit_one_phase", calls)
	}
}

func TestOnePhaseFailureRollsBack(t *testing.T) {
	svc := NewService()
	tx := svc.Begin()
	r := newFake("solo")
	r.commitErr = errors.New("disk full")
	_ = tx.RegisterResource(r)
	if err := tx.Commit(true); !errors.Is(err, ErrRolledBack) {
		t.Fatalf("err = %v, want ErrRolledBack", err)
	}
	if tx.Status() != StatusRolledBack {
		t.Fatalf("status = %s", tx.Status())
	}
}

func TestTwoPhaseCommitHappyPath(t *testing.T) {
	svc := NewService()
	tx := svc.Begin()
	a, b := newFake("a"), newFake("b")
	_ = tx.RegisterResource(a)
	_ = tx.RegisterResource(b)
	if err := tx.Commit(true); err != nil {
		t.Fatal(err)
	}
	for _, r := range []*fakeResource{a, b} {
		calls := r.Calls()
		if len(calls) != 2 || calls[0] != "prepare" || calls[1] != "commit" {
			t.Fatalf("%s calls = %v", r.name, calls)
		}
	}
	if tx.Status() != StatusCommitted {
		t.Fatalf("status = %s", tx.Status())
	}
}

func TestVoteRollbackAbortsEveryone(t *testing.T) {
	svc := NewService()
	tx := svc.Begin()
	a, veto, c := newFake("a"), newFake("veto"), newFake("c")
	veto.vote = VoteRollback
	_ = tx.RegisterResource(a)
	_ = tx.RegisterResource(veto)
	_ = tx.RegisterResource(c)
	if err := tx.Commit(true); !errors.Is(err, ErrRolledBack) {
		t.Fatalf("err = %v", err)
	}
	// a prepared then rolled back; c never prepared, rolled back directly.
	ac := a.Calls()
	if len(ac) != 2 || ac[0] != "prepare" || ac[1] != "rollback" {
		t.Fatalf("a calls = %v", ac)
	}
	cc := c.Calls()
	if len(cc) != 1 || cc[0] != "rollback" {
		t.Fatalf("c calls = %v", cc)
	}
	if tx.Status() != StatusRolledBack {
		t.Fatalf("status = %s", tx.Status())
	}
}

func TestPrepareErrorTreatedAsVeto(t *testing.T) {
	svc := NewService()
	tx := svc.Begin()
	a, b := newFake("a"), newFake("b")
	b.prepareErr = errors.New("cannot prepare")
	_ = tx.RegisterResource(a)
	_ = tx.RegisterResource(b)
	if err := tx.Commit(true); !errors.Is(err, ErrRolledBack) {
		t.Fatalf("err = %v", err)
	}
}

func TestReadOnlySkipsPhaseTwo(t *testing.T) {
	svc := NewService()
	tx := svc.Begin()
	ro, rw1, rw2 := newFake("ro"), newFake("rw1"), newFake("rw2")
	ro.vote = VoteReadOnly
	_ = tx.RegisterResource(ro)
	_ = tx.RegisterResource(rw1)
	_ = tx.RegisterResource(rw2)
	if err := tx.Commit(true); err != nil {
		t.Fatal(err)
	}
	roCalls := ro.Calls()
	if len(roCalls) != 1 || roCalls[0] != "prepare" {
		t.Fatalf("read-only calls = %v", roCalls)
	}
}

func TestAllReadOnlyCommitsWithoutPhaseTwo(t *testing.T) {
	svc := NewService()
	tx := svc.Begin()
	a, b := newFake("a"), newFake("b")
	a.vote, b.vote = VoteReadOnly, VoteReadOnly
	_ = tx.RegisterResource(a)
	_ = tx.RegisterResource(b)
	if err := tx.Commit(true); err != nil {
		t.Fatal(err)
	}
	if got := a.Calls(); len(got) != 1 {
		t.Fatalf("a calls = %v", got)
	}
}

func TestExplicitRollback(t *testing.T) {
	svc := NewService()
	tx := svc.Begin()
	a, b := newFake("a"), newFake("b")
	_ = tx.RegisterResource(a)
	_ = tx.RegisterResource(b)
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	for _, r := range []*fakeResource{a, b} {
		calls := r.Calls()
		if len(calls) != 1 || calls[0] != "rollback" {
			t.Fatalf("%s calls = %v", r.name, calls)
		}
	}
	if tx.Status() != StatusRolledBack {
		t.Fatalf("status = %s", tx.Status())
	}
}

func TestRollbackOnlyForcesRollbackAtCommit(t *testing.T) {
	svc := NewService()
	tx := svc.Begin()
	r := newFake("r")
	_ = tx.RegisterResource(r)
	if err := tx.RollbackOnly(); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(true); !errors.Is(err, ErrRolledBack) {
		t.Fatalf("err = %v", err)
	}
	calls := r.Calls()
	if len(calls) != 1 || calls[0] != "rollback" {
		t.Fatalf("calls = %v", calls)
	}
}

func TestCompletedTransactionRejectsEverything(t *testing.T) {
	svc := NewService()
	tx := svc.Begin()
	if err := tx.Commit(true); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(true); !errors.Is(err, ErrInactive) {
		t.Fatalf("second commit err = %v", err)
	}
	if err := tx.Rollback(); !errors.Is(err, ErrInactive) {
		t.Fatalf("rollback err = %v", err)
	}
	if err := tx.RegisterResource(newFake("late")); !errors.Is(err, ErrInactive) {
		t.Fatalf("register err = %v", err)
	}
	if err := tx.RollbackOnly(); !errors.Is(err, ErrInactive) {
		t.Fatalf("rollback-only err = %v", err)
	}
	if _, err := tx.BeginSubtransaction(); !errors.Is(err, ErrInactive) {
		t.Fatalf("subtransaction err = %v", err)
	}
}

func TestHeuristicMixed(t *testing.T) {
	svc := NewService(WithRetryPolicy(2, 0))
	tx := svc.Begin()
	good, bad := newFake("good"), newFake("bad")
	bad.commitErr = errors.New("permanently broken")
	_ = tx.RegisterResource(good)
	_ = tx.RegisterResource(bad)
	err := tx.Commit(true)
	if !errors.Is(err, ErrHeuristicMixed) {
		t.Fatalf("err = %v, want ErrHeuristicMixed", err)
	}
	// The logical outcome is still commit.
	if tx.Status() != StatusCommitted {
		t.Fatalf("status = %s", tx.Status())
	}
	// The failed delivery's outcome is unknown, so the participant must NOT
	// be told to forget: the decision stays live for Recover to re-drive.
	for _, c := range bad.Calls() {
		if c == "forget" {
			t.Fatalf("bad calls = %v, forget must not be sent on failed delivery", bad.Calls())
		}
	}
}

func TestHeuristicsSuppressedWhenNotRequested(t *testing.T) {
	svc := NewService(WithRetryPolicy(2, 0))
	tx := svc.Begin()
	good, bad := newFake("good"), newFake("bad")
	bad.commitErr = errors.New("permanently broken")
	_ = tx.RegisterResource(good)
	_ = tx.RegisterResource(bad)
	if err := tx.Commit(false); err != nil {
		t.Fatalf("err = %v, want nil with heuristics suppressed", err)
	}
}

func TestPhaseTwoRetriesTransientFailure(t *testing.T) {
	svc := NewService(WithRetryPolicy(3, 0))
	tx := svc.Begin()
	flaky, other := newFake("flaky"), newFake("other")
	flaky.commitFailures = 2 // fails twice, succeeds on third attempt
	_ = tx.RegisterResource(flaky)
	_ = tx.RegisterResource(other)
	if err := tx.Commit(true); err != nil {
		t.Fatalf("err = %v", err)
	}
	commits := 0
	for _, c := range flaky.Calls() {
		if c == "commit" {
			commits++
		}
	}
	if commits != 3 {
		t.Fatalf("flaky received %d commit attempts, want 3", commits)
	}
}

func TestTimeoutMarksRollbackOnly(t *testing.T) {
	svc := NewService()
	tx := svc.Begin(WithTimeout(20 * time.Millisecond))
	deadline := time.After(2 * time.Second)
	for tx.Status() != StatusMarkedRollback {
		select {
		case <-deadline:
			t.Fatalf("status = %s, never marked rollback", tx.Status())
		default:
			time.Sleep(5 * time.Millisecond)
		}
	}
	if err := tx.Commit(true); !errors.Is(err, ErrRolledBack) {
		t.Fatalf("commit err = %v", err)
	}
}

func TestCommitCancelsTimeout(t *testing.T) {
	svc := NewService()
	tx := svc.Begin(WithTimeout(30 * time.Millisecond))
	if err := tx.Commit(true); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if tx.Status() != StatusCommitted {
		t.Fatalf("status = %s after timer should have been stopped", tx.Status())
	}
}

// syncRecorder records synchronization callbacks.
type syncRecorder struct {
	mu        sync.Mutex
	before    int
	beforeErr error
	after     []Status
}

func (s *syncRecorder) BeforeCompletion() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.before++
	return s.beforeErr
}

func (s *syncRecorder) AfterCompletion(st Status) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.after = append(s.after, st)
}

func TestSynchronizationLifecycle(t *testing.T) {
	svc := NewService()
	tx := svc.Begin()
	sr := &syncRecorder{}
	_ = tx.RegisterSynchronization(sr)
	_ = tx.RegisterResource(newFake("a"))
	_ = tx.RegisterResource(newFake("b"))
	if err := tx.Commit(true); err != nil {
		t.Fatal(err)
	}
	if sr.before != 1 {
		t.Fatalf("before = %d", sr.before)
	}
	if len(sr.after) != 1 || sr.after[0] != StatusCommitted {
		t.Fatalf("after = %v", sr.after)
	}
}

func TestBeforeCompletionErrorForcesRollback(t *testing.T) {
	svc := NewService()
	tx := svc.Begin()
	sr := &syncRecorder{beforeErr: errors.New("flush failed")}
	_ = tx.RegisterSynchronization(sr)
	r := newFake("r")
	_ = tx.RegisterResource(r)
	if err := tx.Commit(true); !errors.Is(err, ErrRolledBack) {
		t.Fatalf("err = %v", err)
	}
	if len(sr.after) != 1 || sr.after[0] != StatusRolledBack {
		t.Fatalf("after = %v", sr.after)
	}
	calls := r.Calls()
	if len(calls) != 1 || calls[0] != "rollback" {
		t.Fatalf("calls = %v", calls)
	}
}

func TestSynchronizationOnRollback(t *testing.T) {
	svc := NewService()
	tx := svc.Begin()
	sr := &syncRecorder{}
	_ = tx.RegisterSynchronization(sr)
	_ = tx.Rollback()
	if sr.before != 0 {
		t.Fatalf("before = %d, want 0 on rollback", sr.before)
	}
	if len(sr.after) != 1 || sr.after[0] != StatusRolledBack {
		t.Fatalf("after = %v", sr.after)
	}
}

func TestConcurrentCommitRollbackRace(t *testing.T) {
	// Exactly one of commit/rollback must win; the loser sees ErrInactive
	// (or commit observes the rollback). Never both outcomes.
	for i := 0; i < 50; i++ {
		svc := NewService()
		tx := svc.Begin()
		_ = tx.RegisterResource(newFake("a"))
		_ = tx.RegisterResource(newFake("b"))
		var wg sync.WaitGroup
		wg.Add(2)
		go func() { defer wg.Done(); _ = tx.Commit(true) }()
		go func() { defer wg.Done(); _ = tx.Rollback() }()
		wg.Wait()
		st := tx.Status()
		if st != StatusCommitted && st != StatusRolledBack {
			t.Fatalf("iteration %d: non-terminal status %s", i, st)
		}
	}
}

func TestIsSameAndIdentity(t *testing.T) {
	svc := NewService()
	t1, t2 := svc.Begin(), svc.Begin()
	if t1.IsSame(t2) {
		t.Fatal("distinct transactions compare same")
	}
	if !t1.IsSame(t1) {
		t.Fatal("transaction not same as itself")
	}
	if t1.IsSame(nil) {
		t.Fatal("IsSame(nil) = true")
	}
	if t1.ID() == t2.ID() {
		t.Fatal("duplicate transaction ids")
	}
}
