package ots

import "sync"

// Resource is a two-phase-commit participant, mirroring the CosTransactions
// Resource interface. Implementations must tolerate repeated Commit and
// Rollback calls: the coordinator retries during failure recovery, so both
// must be idempotent.
type Resource interface {
	// Prepare votes on the outcome. After voting VoteCommit the resource
	// must be able to either Commit or Rollback durably.
	Prepare() (Vote, error)
	// Commit makes the prepared work permanent.
	Commit() error
	// Rollback undoes the work.
	Rollback() error
	// CommitOnePhase both prepares and commits, used when the resource is
	// the transaction's only participant.
	CommitOnePhase() error
	// Forget tells the resource the coordinator has seen its heuristic
	// outcome and it may discard recovery state.
	Forget() error
}

// SubtransactionAwareResource additionally receives nested-transaction
// completion callbacks. On subtransaction commit the resource is inherited
// by (re-registered with) the parent, as the paper describes for nested
// transactions and the LRUOW model.
type SubtransactionAwareResource interface {
	Resource
	// CommitSubtransaction tells the resource its enclosing subtransaction
	// committed provisionally into parent.
	CommitSubtransaction(parent *Transaction) error
	// RollbackSubtransaction tells the resource its enclosing
	// subtransaction rolled back.
	RollbackSubtransaction() error
}

// Synchronization receives before/after completion callbacks (flush caches
// before prepare, release cursors after completion).
type Synchronization interface {
	// BeforeCompletion runs before phase one. An error marks the
	// transaction rollback-only.
	BeforeCompletion() error
	// AfterCompletion runs after the outcome is decided, with the final
	// status.
	AfterCompletion(Status)
}

// NamedResource is a Resource with a stable recovery name. Transactions log
// the names of prepared participants so that, after a crash, the recovery
// manager can re-bind them through a Directory and finish the protocol.
type NamedResource interface {
	Resource
	// RecoveryName returns a name stable across process restarts.
	RecoveryName() string
}

// Directory maps recovery names to resource instances after a restart.
// It plays the role the ORB's persistent object references play in a real
// CORBA deployment. Safe for concurrent use.
type Directory struct {
	mu sync.RWMutex
	m  map[string]Resource
}

// NewDirectory returns an empty directory.
func NewDirectory() *Directory {
	return &Directory{m: make(map[string]Resource)}
}

// Register binds name to r, replacing any previous binding.
func (d *Directory) Register(name string, r Resource) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.m[name] = r
}

// Unregister removes the binding for name.
func (d *Directory) Unregister(name string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.m, name)
}

// Lookup returns the resource bound to name.
func (d *Directory) Lookup(name string) (Resource, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	r, ok := d.m[name]
	return r, ok
}

// Names returns the registered names, unordered.
func (d *Directory) Names() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]string, 0, len(d.m))
	for k := range d.m {
		out = append(out, k)
	}
	return out
}
