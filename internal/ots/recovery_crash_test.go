package ots

import (
	"errors"
	"sync"
	"testing"

	"github.com/extendedtx/activityservice/internal/wal"
)

// failingDurable is a durableResource whose first n Commit deliveries fail
// with an unknown-outcome error (the participant's durable state does not
// change), simulating a participant that was unreachable during live
// phase two but answers during a later recovery pass.
type failingDurable struct {
	*durableResource
	mu         sync.Mutex
	failures   int
	forgetSeen bool
}

func (f *failingDurable) Commit() error {
	f.mu.Lock()
	if f.failures > 0 {
		f.failures--
		f.mu.Unlock()
		return errors.New("delivery failed: participant unreachable")
	}
	f.mu.Unlock()
	return f.durableResource.Commit()
}

func (f *failingDurable) Forget() error {
	f.mu.Lock()
	f.forgetSeen = true
	f.mu.Unlock()
	return nil
}

// TestPrematureDoneRegression is the headline regression: a commit whose
// delivery to one participant fails must keep its decision live (no done
// record, no Forget) so a later recovery pass re-drives the participant to
// committed. On the seed tree the done record was appended and the
// participant forgotten unconditionally, so the commit was durably lost.
func TestPrematureDoneRegression(t *testing.T) {
	log := wal.NewMemory()
	svc := NewService(WithLog(log), WithRetryPolicy(2, 0))
	disk := map[string]string{}
	good := newDurable("good", &disk)
	bad := &failingDurable{durableResource: newDurable("bad", &disk), failures: 2}

	tx := svc.Begin()
	_ = tx.RegisterResource(good)
	_ = tx.RegisterResource(bad)
	err := tx.Commit(true)
	if !errors.Is(err, ErrHeuristicMixed) {
		t.Fatalf("commit err = %v, want ErrHeuristicMixed", err)
	}
	if disk["good"] != "committed" || disk["bad"] != "prepared" {
		t.Fatalf("disk = %v", disk)
	}
	if bad.forgetSeen {
		t.Fatal("failed participant was told to forget; its recovery state is lost")
	}

	// The decision must still be in the log WITHOUT a done marker.
	recs, err := log.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Kind != RecordDecision {
		kinds := make([]wal.Kind, len(recs))
		for i, r := range recs {
			kinds[i] = r.Kind
		}
		t.Fatalf("log kinds = %v, want exactly one decision record", kinds)
	}

	// A later pass (participant back) must commit it and seal the decision.
	svc.Directory().Register("good", good)
	svc.Directory().Register("bad", bad)
	stats, err := svc.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if stats.DecisionsReplayed != 1 || stats.ResourcesCommitted != 2 || stats.ResourcesFailed != 0 {
		t.Fatalf("stats = %+v", stats)
	}
	if disk["bad"] != "committed" {
		t.Fatalf("bad = %q, want committed", disk["bad"])
	}
	stats2, err := svc.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if stats2.DecisionsReplayed != 0 {
		t.Fatalf("second pass stats = %+v, want no replays", stats2)
	}
}

// TestRecoveryStatsCountsFailures pins the ResourcesFailed counter: a
// delivery failure during recovery must be counted as failed — not folded
// into missing — and must keep the decision live.
func TestRecoveryStatsCountsFailures(t *testing.T) {
	log := wal.NewMemory()
	svc := NewService(WithLog(log), WithRetryPolicy(1, 0))
	disk := map[string]string{}
	tx := svc.Begin()
	_ = tx.RegisterResource(newDurable("ok", &disk))
	_ = tx.RegisterResource(newDurable("flaky", &disk))
	_ = tx.RegisterResource(newDurable("gone", &disk))
	if err := tx.Commit(true); err != nil {
		t.Fatal(err)
	}

	// Restart with only the decision record (crash before phase two).
	recs, _ := log.Records()
	crashLog := wal.NewMemory()
	if _, err := crashLog.Append(recs[0].Kind, recs[0].Data); err != nil {
		t.Fatal(err)
	}
	disk = map[string]string{"ok": "prepared", "flaky": "prepared", "gone": "prepared"}
	svc2 := NewService(WithLog(crashLog), WithRetryPolicy(1, 0))
	svc2.Directory().Register("ok", newDurable("ok", &disk))
	svc2.Directory().Register("flaky", &failingDurable{durableResource: newDurable("flaky", &disk), failures: 1})
	// "gone" has no binding at all.

	stats, err := svc2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if stats.DecisionsReplayed != 1 || stats.ResourcesCommitted != 1 ||
		stats.ResourcesFailed != 1 || stats.ResourcesMissing != 1 {
		t.Fatalf("stats = %+v, want 1 committed / 1 failed / 1 missing", stats)
	}
	totals := svc2.RecoveryTotals()
	if totals.Passes != 1 || totals.ResourcesFailed != 1 || totals.PendingDecisions != 1 {
		t.Fatalf("totals = %+v", totals)
	}

	// Second pass: flaky now answers, gone is bound — decision seals.
	svc2.Directory().Register("gone", newDurable("gone", &disk))
	stats2, err := svc2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if stats2.ResourcesFailed != 0 || stats2.ResourcesMissing != 0 || stats2.ResourcesCommitted != 3 {
		t.Fatalf("second pass stats = %+v", stats2)
	}
	if totals := svc2.RecoveryTotals(); totals.PendingDecisions != 0 {
		t.Fatalf("totals after seal = %+v", totals)
	}
}

// TestReplayCompletionAfterCheckpoint pins the checkpoint-consistency rule:
// a name in a decision that already has a done marker still answers
// StatusCommitted — the records are durable until CheckpointLog compacts
// them — and only after the checkpoint drops the pair does the name fall
// back to presumed abort.
func TestReplayCompletionAfterCheckpoint(t *testing.T) {
	log := wal.NewMemory()
	svc := NewService(WithLog(log))
	disk := map[string]string{}
	tx := svc.Begin()
	// Two resources: a single participant takes the one-phase path, which
	// never logs a decision at all.
	_ = tx.RegisterResource(newDurable("settled", &disk))
	_ = tx.RegisterResource(newDurable("peer", &disk))
	if err := tx.Commit(true); err != nil {
		t.Fatal(err)
	}

	// Decision + done are both in the log: still committed.
	st, err := svc.ReplayCompletion("settled")
	if err != nil {
		t.Fatal(err)
	}
	if st != StatusCommitted {
		t.Fatalf("pre-checkpoint status = %s, want committed", st)
	}

	if err := svc.CheckpointLog(); err != nil {
		t.Fatal(err)
	}
	st, err = svc.ReplayCompletion("settled")
	if err != nil {
		t.Fatal(err)
	}
	if st != StatusRolledBack {
		t.Fatalf("post-checkpoint status = %s, want rolled-back (presumed abort)", st)
	}
}

// TestCrashBeforeDecisionRecoveryPresumedAbort drives the crash boundary
// before logDecision with wal crash injection: the decision append tears,
// the transaction rolls back, and after a simulated restart the replayed
// log yields presumed abort for the prepared participant.
func TestCrashBeforeDecisionRecoveryPresumedAbort(t *testing.T) {
	log := wal.NewMemory()
	log.InjectCrashAfter(0) // the decision append itself crashes (torn write)
	svc := NewService(WithLog(log), WithRetryPolicy(1, 0))
	disk := map[string]string{}
	tx := svc.Begin()
	_ = tx.RegisterResource(newDurable("p1", &disk))
	_ = tx.RegisterResource(newDurable("p2", &disk))
	if err := tx.Commit(true); !errors.Is(err, ErrRolledBack) {
		t.Fatalf("commit err = %v, want ErrRolledBack", err)
	}

	// Restart: replay whatever survived the torn write into a new service.
	snap, err := log.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	log2, err := wal.OpenMemory(snap)
	if err != nil {
		t.Fatal(err)
	}
	svc2 := NewService(WithLog(log2))
	stats, err := svc2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if stats.DecisionsReplayed != 0 {
		t.Fatalf("stats = %+v, want no decisions (none became durable)", stats)
	}
	for _, name := range []string{"p1", "p2"} {
		st, err := svc2.ReplayCompletion(name)
		if err != nil {
			t.Fatal(err)
		}
		if st != StatusRolledBack {
			t.Fatalf("%s status = %s, want rolled-back (presumed abort)", name, st)
		}
	}
}

// TestCrashAfterDecisionRecoveryReplaysCommit drives the crash boundary
// between logDecision and phase two: the decision is durable, the crash
// (simulated via the event hook snapshotting the log at StageDecisionLogged)
// stops delivery, and a restarted service replays commit to every named
// participant.
func TestCrashAfterDecisionRecoveryReplaysCommit(t *testing.T) {
	log := wal.NewMemory()
	var snapAtDecision []byte
	svc := NewService(WithLog(log), WithEventHook(func(e Event) {
		if e.Stage == StageDecisionLogged {
			// The log state at the exact crash boundary: decision durable,
			// phase two not yet begun.
			if b, err := log.Snapshot(); err == nil {
				snapAtDecision = b
			}
		}
	}))
	disk := map[string]string{}
	tx := svc.Begin()
	_ = tx.RegisterResource(newDurable("p1", &disk))
	_ = tx.RegisterResource(newDurable("p2", &disk))
	if err := tx.Commit(true); err != nil {
		t.Fatal(err)
	}
	if snapAtDecision == nil {
		t.Fatal("decision-logged hook never fired")
	}

	// Restart from the boundary snapshot; participants are still prepared.
	disk = map[string]string{"p1": "prepared", "p2": "prepared"}
	log2, err := wal.OpenMemory(snapAtDecision)
	if err != nil {
		t.Fatal(err)
	}
	svc2 := NewService(WithLog(log2))
	svc2.Directory().Register("p1", newDurable("p1", &disk))
	svc2.Directory().Register("p2", newDurable("p2", &disk))
	stats, err := svc2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if stats.DecisionsReplayed != 1 || stats.ResourcesCommitted != 2 {
		t.Fatalf("stats = %+v", stats)
	}
	if disk["p1"] != "committed" || disk["p2"] != "committed" {
		t.Fatalf("disk = %v", disk)
	}
	// The replayed decision now answers committed to stragglers.
	if st, _ := svc2.ReplayCompletion("p1"); st != StatusCommitted {
		t.Fatalf("replay status = %s, want committed", st)
	}
}

// TestCrashOnDoneRecordRedeliversIdempotently drives the boundary at the
// done append: the decision committed fully but the done record tore, so a
// restarted service must re-deliver commit (at-least-once) and the
// participants must tolerate the duplicate.
func TestCrashOnDoneRecordRedeliversIdempotently(t *testing.T) {
	log := wal.NewMemory()
	log.InjectCrashAfter(1) // decision survives; the done append tears
	svc := NewService(WithLog(log), WithRetryPolicy(1, 0))
	disk := map[string]string{}
	tx := svc.Begin()
	_ = tx.RegisterResource(newDurable("p1", &disk))
	_ = tx.RegisterResource(newDurable("p2", &disk))
	if err := tx.Commit(true); err != nil {
		t.Fatal(err) // logDone is best-effort; the commit itself succeeded
	}
	if disk["p1"] != "committed" || disk["p2"] != "committed" {
		t.Fatalf("disk = %v", disk)
	}

	snap, err := log.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	log2, err := wal.OpenMemory(snap)
	if err != nil {
		t.Fatal(err)
	}
	svc2 := NewService(WithLog(log2))
	svc2.Directory().Register("p1", newDurable("p1", &disk))
	svc2.Directory().Register("p2", newDurable("p2", &disk))
	stats, err := svc2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	// The lost done marker makes the pass re-drive the decision once.
	if stats.DecisionsReplayed != 1 || stats.ResourcesCommitted != 2 {
		t.Fatalf("stats = %+v", stats)
	}
	if disk["p1"] != "committed" || disk["p2"] != "committed" {
		t.Fatalf("disk = %v", disk)
	}
	stats2, err := svc2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if stats2.DecisionsReplayed != 0 {
		t.Fatalf("second pass stats = %+v", stats2)
	}
}
