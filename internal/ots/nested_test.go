package ots

import (
	"errors"
	"sync"
	"testing"
)

// awareResource records subtransaction callbacks in addition to the plain
// Resource protocol.
type awareResource struct {
	fakeResource

	subCommits   int
	subRollbacks int
	subCommitErr error
	lastParent   *Transaction
}

func (a *awareResource) CommitSubtransaction(parent *Transaction) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.subCommits++
	a.lastParent = parent
	a.calls = append(a.calls, "commit_subtransaction")
	return a.subCommitErr
}

func (a *awareResource) RollbackSubtransaction() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.subRollbacks++
	a.calls = append(a.calls, "rollback_subtransaction")
	return nil
}

func TestSubtransactionCommitPropagatesResources(t *testing.T) {
	svc := NewService()
	top := svc.Begin()
	sub, err := top.BeginSubtransaction()
	if err != nil {
		t.Fatal(err)
	}
	if sub.Depth() != 1 || sub.Parent() != top || sub.TopLevel() != top {
		t.Fatal("hierarchy wiring wrong")
	}
	aware := &awareResource{fakeResource: fakeResource{name: "aw", vote: VoteCommit}}
	plain := newFake("plain")
	_ = sub.RegisterResource(aware)
	_ = sub.RegisterResource(plain)

	if err := sub.Commit(true); err != nil {
		t.Fatal(err)
	}
	if sub.Status() != StatusCommitted {
		t.Fatalf("sub status = %s", sub.Status())
	}
	if aware.subCommits != 1 || aware.lastParent != top {
		t.Fatalf("subCommits = %d parent ok=%v", aware.subCommits, aware.lastParent == top)
	}
	// Until the top level commits, nothing has prepared or committed.
	for _, c := range plain.Calls() {
		if c == "prepare" || c == "commit" {
			t.Fatalf("plain resource saw %s before top-level completion", c)
		}
	}

	// Top-level commit drives the inherited resources through 2PC.
	if err := top.Commit(true); err != nil {
		t.Fatal(err)
	}
	pc := plain.Calls()
	if len(pc) != 2 || pc[0] != "prepare" || pc[1] != "commit" {
		t.Fatalf("plain calls after top commit = %v", pc)
	}
}

func TestSubtransactionRollbackIsIndependent(t *testing.T) {
	svc := NewService()
	top := svc.Begin()
	sub, _ := top.BeginSubtransaction()
	aware := &awareResource{fakeResource: fakeResource{name: "aw", vote: VoteCommit}}
	plain := newFake("plain")
	_ = sub.RegisterResource(aware)
	_ = sub.RegisterResource(plain)

	if err := sub.Rollback(); err != nil {
		t.Fatal(err)
	}
	if aware.subRollbacks != 1 {
		t.Fatalf("subRollbacks = %d", aware.subRollbacks)
	}
	pc := plain.Calls()
	if len(pc) != 1 || pc[0] != "rollback" {
		t.Fatalf("plain calls = %v", pc)
	}
	// The parent continues unharmed: failure confinement (paper §1).
	if top.Status() != StatusActive {
		t.Fatalf("top status = %s", top.Status())
	}
	if err := top.Commit(true); err != nil {
		t.Fatal(err)
	}
}

func TestParentRollbackCascades(t *testing.T) {
	svc := NewService()
	top := svc.Begin()
	sub, _ := top.BeginSubtransaction()
	subsub, _ := sub.BeginSubtransaction()
	r := newFake("deep")
	_ = subsub.RegisterResource(r)

	if err := top.Rollback(); err != nil {
		t.Fatal(err)
	}
	if sub.Status() != StatusRolledBack || subsub.Status() != StatusRolledBack {
		t.Fatalf("statuses: sub=%s subsub=%s", sub.Status(), subsub.Status())
	}
	calls := r.Calls()
	if len(calls) != 1 || calls[0] != "rollback" {
		t.Fatalf("calls = %v", calls)
	}
}

func TestCommitWithOutstandingChildrenRollsBack(t *testing.T) {
	svc := NewService()
	top := svc.Begin()
	sub, _ := top.BeginSubtransaction()
	r := newFake("child-resource")
	_ = sub.RegisterResource(r)

	if err := top.Commit(true); !errors.Is(err, ErrRolledBack) {
		t.Fatalf("err = %v", err)
	}
	if sub.Status() != StatusRolledBack || top.Status() != StatusRolledBack {
		t.Fatalf("statuses: top=%s sub=%s", top.Status(), sub.Status())
	}
}

func TestSubCommitRefusalVetoes(t *testing.T) {
	svc := NewService()
	top := svc.Begin()
	sub, _ := top.BeginSubtransaction()
	aware := &awareResource{fakeResource: fakeResource{name: "aw", vote: VoteCommit}}
	aware.subCommitErr = errors.New("refuse")
	_ = sub.RegisterResource(aware)
	if err := sub.Commit(true); !errors.Is(err, ErrRolledBack) {
		t.Fatalf("err = %v", err)
	}
	if sub.Status() != StatusRolledBack {
		t.Fatalf("sub status = %s", sub.Status())
	}
	if top.Status() != StatusActive {
		t.Fatalf("top status = %s", top.Status())
	}
}

func TestDeepNestingCommitChain(t *testing.T) {
	svc := NewService()
	top := svc.Begin()
	cur := top
	const depth = 8
	var leaves []*Transaction
	for i := 0; i < depth; i++ {
		sub, err := cur.BeginSubtransaction()
		if err != nil {
			t.Fatal(err)
		}
		leaves = append(leaves, sub)
		cur = sub
	}
	r := newFake("leaf")
	_ = cur.RegisterResource(r)
	if cur.Depth() != depth {
		t.Fatalf("depth = %d", cur.Depth())
	}
	// Commit innermost-out.
	for i := len(leaves) - 1; i >= 0; i-- {
		if err := leaves[i].Commit(true); err != nil {
			t.Fatalf("commit depth %d: %v", i+1, err)
		}
	}
	if err := top.Commit(true); err != nil {
		t.Fatal(err)
	}
	calls := r.Calls()
	if len(calls) != 1 || calls[0] != "commit_one_phase" {
		t.Fatalf("leaf calls = %v", calls)
	}
}

func TestConcurrentSiblingSubtransactions(t *testing.T) {
	svc := NewService()
	top := svc.Begin()
	var wg sync.WaitGroup
	const n = 16
	resources := make([]*fakeResource, n)
	for i := 0; i < n; i++ {
		sub, err := top.BeginSubtransaction()
		if err != nil {
			t.Fatal(err)
		}
		resources[i] = newFake("r")
		_ = sub.RegisterResource(resources[i])
		wg.Add(1)
		go func(s *Transaction, commit bool) {
			defer wg.Done()
			if commit {
				_ = s.Commit(true)
			} else {
				_ = s.Rollback()
			}
		}(sub, i%2 == 0)
	}
	wg.Wait()
	if err := top.Commit(true); err != nil {
		t.Fatal(err)
	}
	// Every even resource committed at top level, every odd rolled back.
	for i, r := range resources {
		sawCommit, sawRollback := false, false
		for _, c := range r.Calls() {
			switch c {
			case "commit", "commit_one_phase":
				sawCommit = true
			case "rollback":
				sawRollback = true
			}
		}
		if i%2 == 0 && !sawCommit {
			t.Errorf("resource %d never committed: %v", i, r.Calls())
		}
		if i%2 == 1 && !sawRollback {
			t.Errorf("resource %d never rolled back: %v", i, r.Calls())
		}
	}
}
