package ots

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/extendedtx/activityservice/internal/ids"
	"github.com/extendedtx/activityservice/internal/lockmgr"
)

// ErrWriteConflict reports that a Var is locked by another transaction
// family and the lock wait timed out.
var ErrWriteConflict = errors.New("ots: write conflict")

// Var is a transactional variable: strict two-phase-locked, with a
// before-image for rollback. It enlists itself with a transaction on first
// use and supports nesting (a subtransaction's update propagates to the
// parent on provisional commit; locks are retained until top-level
// completion, per the paper's retention semantics).
type Var struct {
	name  string
	locks *lockmgr.Manager
	wait  time.Duration

	mu        sync.Mutex
	committed []byte
	pending   map[ids.UID][]byte // tx id -> uncommitted value
	enlisted  map[ids.UID]bool   // tx ids with a registered varResource
	families  map[string]int     // family owner -> live varResource count
}

// NewVar returns a Var named name holding initial, using locks for
// isolation with the given lock wait budget.
func NewVar(name string, initial []byte, locks *lockmgr.Manager, wait time.Duration) *Var {
	return &Var{
		name:      name,
		locks:     locks,
		wait:      wait,
		committed: append([]byte(nil), initial...),
		pending:   make(map[ids.UID][]byte),
		enlisted:  make(map[ids.UID]bool),
		families:  make(map[string]int),
	}
}

// Name returns the variable name.
func (v *Var) Name() string { return v.name }

// Get reads the value as seen by tx: its own pending write, an ancestor's
// pending write, or the committed value. A nil tx reads committed state
// without locking.
func (v *Var) Get(tx *Transaction) ([]byte, error) {
	if tx != nil {
		if err := v.locks.Acquire(familyOwner(tx), v.name, lockmgr.Read, v.wait); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrWriteConflict, err)
		}
		if err := v.enlist(tx); err != nil {
			return nil, err
		}
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	for t := tx; t != nil; t = t.Parent() {
		if val, ok := v.pending[t.ID()]; ok {
			return append([]byte(nil), val...), nil
		}
	}
	return append([]byte(nil), v.committed...), nil
}

// Set writes the value under tx, enlisting the Var with tx on first use.
// Lock ownership is keyed by the top-level transaction so that nested
// transactions of one family do not conflict with each other. A nil tx
// writes committed state directly.
func (v *Var) Set(tx *Transaction, value []byte) error {
	if tx == nil {
		v.mu.Lock()
		defer v.mu.Unlock()
		v.committed = append([]byte(nil), value...)
		return nil
	}
	if err := v.locks.Acquire(familyOwner(tx), v.name, lockmgr.Write, v.wait); err != nil {
		return fmt.Errorf("%w: %v", ErrWriteConflict, err)
	}
	if err := v.enlist(tx); err != nil {
		return err
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	v.pending[tx.ID()] = append([]byte(nil), value...)
	return nil
}

// Committed returns the durably committed value.
func (v *Var) Committed() []byte {
	v.mu.Lock()
	defer v.mu.Unlock()
	return append([]byte(nil), v.committed...)
}

// enlist registers a varResource with tx exactly once.
func (v *Var) enlist(tx *Transaction) error {
	v.mu.Lock()
	if v.enlisted[tx.ID()] {
		v.mu.Unlock()
		return nil
	}
	v.enlisted[tx.ID()] = true
	v.families[familyOwner(tx)]++
	v.mu.Unlock()
	if err := tx.RegisterResource(&varResource{v: v, tx: tx}); err != nil {
		v.mu.Lock()
		delete(v.enlisted, tx.ID())
		v.families[familyOwner(tx)]--
		v.mu.Unlock()
		return err
	}
	return nil
}

// discharge decrements the family's live resource count and, when it
// reaches zero, releases every lock the family holds on this variable.
func (v *Var) discharge(family string) {
	v.mu.Lock()
	v.families[family]--
	done := v.families[family] <= 0
	if done {
		delete(v.families, family)
	}
	v.mu.Unlock()
	if !done {
		return
	}
	for v.locks.Holds(family, v.name) {
		if err := v.locks.Release(family, v.name); err != nil {
			return
		}
	}
}

// familyOwner keys lock ownership by the top-level transaction.
func familyOwner(tx *Transaction) string {
	return tx.TopLevel().ID().String()
}

// varResource adapts one (Var, transaction) pair to the Resource protocol.
type varResource struct {
	v  *Var
	tx *Transaction
}

var _ SubtransactionAwareResource = (*varResource)(nil)

func (r *varResource) Prepare() (Vote, error) {
	r.v.mu.Lock()
	_, dirty := r.v.pending[r.tx.ID()]
	if !dirty {
		delete(r.v.enlisted, r.tx.ID())
	}
	r.v.mu.Unlock()
	if !dirty {
		// Read-only participants are finished at prepare; discharge so the
		// family's locks can release once no writer remains.
		r.v.discharge(familyOwner(r.tx))
		return VoteReadOnly, nil
	}
	return VoteCommit, nil
}

func (r *varResource) Commit() error {
	r.v.mu.Lock()
	if val, ok := r.v.pending[r.tx.ID()]; ok {
		r.v.committed = val
		delete(r.v.pending, r.tx.ID())
	}
	delete(r.v.enlisted, r.tx.ID())
	r.v.mu.Unlock()
	r.v.discharge(familyOwner(r.tx))
	return nil
}

func (r *varResource) Rollback() error {
	r.v.mu.Lock()
	delete(r.v.pending, r.tx.ID())
	delete(r.v.enlisted, r.tx.ID())
	r.v.mu.Unlock()
	r.v.discharge(familyOwner(r.tx))
	return nil
}

func (r *varResource) CommitOnePhase() error { return r.Commit() }

func (r *varResource) Forget() error { return nil }

// CommitSubtransaction re-keys the pending value to the parent, retaining
// the write (and the family's locks) until the top level completes.
func (r *varResource) CommitSubtransaction(parent *Transaction) error {
	r.v.mu.Lock()
	defer r.v.mu.Unlock()
	if val, ok := r.v.pending[r.tx.ID()]; ok {
		delete(r.v.pending, r.tx.ID())
		r.v.pending[parent.ID()] = val
	}
	delete(r.v.enlisted, r.tx.ID())
	// This resource instance is inherited by the parent; follow it so the
	// top-level protocol applies the propagated value. The family resource
	// count is unchanged: same family, same live resource.
	r.v.enlisted[parent.ID()] = true
	r.tx = parent
	return nil
}

func (r *varResource) RollbackSubtransaction() error {
	r.v.mu.Lock()
	delete(r.v.pending, r.tx.ID())
	delete(r.v.enlisted, r.tx.ID())
	r.v.mu.Unlock()
	// The family's other resources (if any) keep the locks; when this was
	// the family's only interest the locks release immediately.
	r.v.discharge(familyOwner(r.tx))
	return nil
}
