package ots

import (
	"context"
	"errors"
	"testing"
)

func TestCurrentBeginCommit(t *testing.T) {
	svc := NewService()
	cur := NewCurrent(svc)
	ctx := context.Background()

	ctx, tx, err := cur.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := FromContext(ctx); !ok || got != tx {
		t.Fatal("context does not carry the transaction")
	}
	if st, ok := cur.Status(ctx); !ok || st != StatusActive {
		t.Fatalf("status = %v ok=%v", st, ok)
	}
	ctx, err = cur.Commit(ctx, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := FromContext(ctx); ok {
		t.Fatal("context still carries a transaction after top-level commit")
	}
}

func TestCurrentNestsAutomatically(t *testing.T) {
	svc := NewService()
	cur := NewCurrent(svc)
	ctx := context.Background()

	ctx, top, err := cur.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	ctx, sub, err := cur.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Parent() != top {
		t.Fatal("second Begin did not nest")
	}
	ctx, err = cur.Commit(ctx, true)
	if err != nil {
		t.Fatal(err)
	}
	// Popped back to the parent.
	if got, ok := FromContext(ctx); !ok || got != top {
		t.Fatal("context does not carry the parent after nested commit")
	}
	if _, err := cur.Commit(ctx, true); err != nil {
		t.Fatal(err)
	}
}

func TestCurrentRollbackPops(t *testing.T) {
	svc := NewService()
	cur := NewCurrent(svc)
	ctx, top, _ := cur.Begin(context.Background())
	ctx, _, _ = cur.Begin(ctx)
	ctx, err := cur.Rollback(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := FromContext(ctx); got != top {
		t.Fatal("rollback did not pop to parent")
	}
	if top.Status() != StatusActive {
		t.Fatalf("parent status = %s", top.Status())
	}
}

func TestCurrentNoTransaction(t *testing.T) {
	svc := NewService()
	cur := NewCurrent(svc)
	ctx := context.Background()
	if _, err := cur.Commit(ctx, true); !errors.Is(err, ErrInactive) {
		t.Fatalf("commit err = %v", err)
	}
	if _, err := cur.Rollback(ctx); !errors.Is(err, ErrInactive) {
		t.Fatalf("rollback err = %v", err)
	}
	if err := cur.RollbackOnly(ctx); !errors.Is(err, ErrInactive) {
		t.Fatalf("rollback-only err = %v", err)
	}
	if _, ok := cur.Status(ctx); ok {
		t.Fatal("status reported for empty context")
	}
}

func TestCurrentRollbackOnly(t *testing.T) {
	svc := NewService()
	cur := NewCurrent(svc)
	ctx, _, _ := cur.Begin(context.Background())
	if err := cur.RollbackOnly(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := cur.Commit(ctx, true); !errors.Is(err, ErrRolledBack) {
		t.Fatalf("commit err = %v", err)
	}
}
