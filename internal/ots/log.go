package ots

import (
	"fmt"

	"github.com/extendedtx/activityservice/internal/cdr"
	"github.com/extendedtx/activityservice/internal/ids"
	"github.com/extendedtx/activityservice/internal/wal"
)

// Log record kinds used by the transaction service.
const (
	// RecordDecision is a durable commit decision: the transaction will
	// commit, listing the recovery names of its prepared participants.
	// Presumed abort means this is the only record that must be forced
	// before phase two.
	RecordDecision wal.Kind = 0x11
	// RecordDone marks a decision as fully delivered, allowing the decision
	// record to be garbage-collected at the next checkpoint.
	RecordDone wal.Kind = 0x12
	// RecordHeuristic records a participant's unilateral (heuristic)
	// outcome so heuristic damage survives restart: the terminator, an
	// operator or a later recovery pass can still see which participants
	// diverged until ForgetHeuristics acknowledges them.
	RecordHeuristic wal.Kind = 0x13
	// RecordHeuristicForget acknowledges a transaction's heuristic
	// records: they stop being reported and are garbage-collected at the
	// next checkpoint.
	RecordHeuristicForget wal.Kind = 0x14
)

// decisionRecord is the decoded form of a RecordDecision entry.
type decisionRecord struct {
	tx    ids.UID
	names []string
}

func encodeDecision(tx ids.UID, names []string) []byte {
	e := cdr.NewEncoder(64)
	e.WriteRaw(tx[:])
	e.WriteUint32(uint32(len(names)))
	for _, n := range names {
		e.WriteString(n)
	}
	return append([]byte(nil), e.Bytes()...)
}

func decodeDecision(b []byte) (decisionRecord, error) {
	var rec decisionRecord
	if len(b) < 16 {
		return rec, fmt.Errorf("ots: decision record too short (%d bytes)", len(b))
	}
	copy(rec.tx[:], b[:16])
	d := cdr.NewDecoder(b[16:])
	n := d.ReadUint32()
	for i := uint32(0); i < n && d.Err() == nil; i++ {
		rec.names = append(rec.names, d.ReadString())
	}
	if err := d.Err(); err != nil {
		return rec, fmt.Errorf("ots: decode decision: %w", err)
	}
	return rec, nil
}

// HeuristicRecord is one durably recorded heuristic outcome: a prepared
// participant that resolved unilaterally instead of waiting for the
// coordinator's phase two.
type HeuristicRecord struct {
	// Tx is the transaction the participant was prepared under.
	Tx ids.UID
	// Resource is the participant's recovery name (may be empty for
	// anonymous participants, which cannot be re-bound after restart).
	Resource string
	// Outcome is what the participant unilaterally did: StatusCommitted
	// or StatusRolledBack.
	Outcome Status
}

func encodeHeuristic(rec HeuristicRecord) []byte {
	e := cdr.NewEncoder(64)
	e.WriteRaw(rec.Tx[:])
	e.WriteOctet(byte(rec.Outcome))
	e.WriteString(rec.Resource)
	return append([]byte(nil), e.Bytes()...)
}

func decodeHeuristic(b []byte) (HeuristicRecord, error) {
	var rec HeuristicRecord
	if len(b) < 17 {
		return rec, fmt.Errorf("ots: heuristic record too short (%d bytes)", len(b))
	}
	copy(rec.Tx[:], b[:16])
	d := cdr.NewDecoder(b[16:])
	rec.Outcome = Status(d.ReadOctet())
	rec.Resource = d.ReadString()
	if err := d.Err(); err != nil {
		return rec, fmt.Errorf("ots: decode heuristic: %w", err)
	}
	return rec, nil
}

func encodeDone(tx ids.UID) []byte {
	out := make([]byte, 16)
	copy(out, tx[:])
	return out
}

func decodeDone(b []byte) (ids.UID, error) {
	var u ids.UID
	if len(b) < 16 {
		return u, fmt.Errorf("ots: done record too short (%d bytes)", len(b))
	}
	copy(u[:], b[:16])
	return u, nil
}

// logDecision forces the commit decision for the prepared participants.
// Without a log the service runs non-durably and the decision is a no-op.
func (t *Transaction) logDecision(prepared []registeredResource) error {
	if t.svc.log == nil {
		return nil
	}
	names := make([]string, 0, len(prepared))
	for _, p := range prepared {
		if p.name != "" {
			names = append(names, p.name)
		}
	}
	lsn, err := t.svc.log.Append(RecordDecision, encodeDecision(t.id, names))
	if err != nil {
		return err
	}
	if t.svc.decisionGate != nil {
		// A veto (the leader was deposed mid-commit) unwinds to rollback
		// before the decision reaches the recovery view: the orphan record
		// below is cut by the rejoin truncation, never replayed.
		if err := t.svc.decisionGate(lsn); err != nil {
			return fmt.Errorf("decision gate vetoed: %w", err)
		}
	}
	t.svc.noteDecision(decisionRecord{tx: t.id, names: names})
	if t.svc.decisionBarrier != nil {
		t.svc.decisionBarrier(lsn)
	}
	return nil
}

// logDone marks the decision delivered; best-effort (losing it only causes
// harmless re-delivery of idempotent commits on recovery).
func (t *Transaction) logDone() {
	if t.svc.log == nil {
		return
	}
	if _, err := t.svc.log.Append(RecordDone, encodeDone(t.id)); err == nil {
		t.svc.noteDone(t.id)
	}
}

// recordHeuristic durably records one participant's heuristic outcome,
// deduplicating per (transaction, resource) so re-driven deliveries that
// keep hitting the same heuristic do not grow the log. Best-effort: with
// no log (or a failing one) the heuristic is still reported to the
// terminator through the commit error, it just will not survive restart.
func (s *Service) recordHeuristic(tx ids.UID, resource string, outcome Status) {
	if s.log == nil {
		return
	}
	s.viewMu.Lock()
	defer s.viewMu.Unlock()
	v, err := s.loadViewLocked()
	if err == nil {
		for _, r := range v.heuristics[tx] {
			if r.Resource == resource {
				return
			}
		}
	}
	rec := HeuristicRecord{Tx: tx, Resource: resource, Outcome: outcome}
	if _, err := s.log.Append(RecordHeuristic, encodeHeuristic(rec)); err != nil {
		return
	}
	if v != nil {
		v.heuristics[tx] = append(v.heuristics[tx], rec)
	}
	s.totMu.Lock()
	s.totals.HeuristicsRecorded++
	s.totMu.Unlock()
}
