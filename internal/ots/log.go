package ots

import (
	"fmt"

	"github.com/extendedtx/activityservice/internal/cdr"
	"github.com/extendedtx/activityservice/internal/ids"
	"github.com/extendedtx/activityservice/internal/wal"
)

// Log record kinds used by the transaction service.
const (
	// RecordDecision is a durable commit decision: the transaction will
	// commit, listing the recovery names of its prepared participants.
	// Presumed abort means this is the only record that must be forced
	// before phase two.
	RecordDecision wal.Kind = 0x11
	// RecordDone marks a decision as fully delivered, allowing the decision
	// record to be garbage-collected at the next checkpoint.
	RecordDone wal.Kind = 0x12
)

// decisionRecord is the decoded form of a RecordDecision entry.
type decisionRecord struct {
	tx    ids.UID
	names []string
}

func encodeDecision(tx ids.UID, names []string) []byte {
	e := cdr.NewEncoder(64)
	e.WriteRaw(tx[:])
	e.WriteUint32(uint32(len(names)))
	for _, n := range names {
		e.WriteString(n)
	}
	return append([]byte(nil), e.Bytes()...)
}

func decodeDecision(b []byte) (decisionRecord, error) {
	var rec decisionRecord
	if len(b) < 16 {
		return rec, fmt.Errorf("ots: decision record too short (%d bytes)", len(b))
	}
	copy(rec.tx[:], b[:16])
	d := cdr.NewDecoder(b[16:])
	n := d.ReadUint32()
	for i := uint32(0); i < n && d.Err() == nil; i++ {
		rec.names = append(rec.names, d.ReadString())
	}
	if err := d.Err(); err != nil {
		return rec, fmt.Errorf("ots: decode decision: %w", err)
	}
	return rec, nil
}

func encodeDone(tx ids.UID) []byte {
	out := make([]byte, 16)
	copy(out, tx[:])
	return out
}

func decodeDone(b []byte) (ids.UID, error) {
	var u ids.UID
	if len(b) < 16 {
		return u, fmt.Errorf("ots: done record too short (%d bytes)", len(b))
	}
	copy(u[:], b[:16])
	return u, nil
}

// logDecision forces the commit decision for the prepared participants.
// Without a log the service runs non-durably and the decision is a no-op.
func (t *Transaction) logDecision(prepared []registeredResource) error {
	if t.svc.log == nil {
		return nil
	}
	names := make([]string, 0, len(prepared))
	for _, p := range prepared {
		if p.name != "" {
			names = append(names, p.name)
		}
	}
	_, err := t.svc.log.Append(RecordDecision, encodeDecision(t.id, names))
	return err
}

// logDone marks the decision delivered; best-effort (losing it only causes
// harmless re-delivery of idempotent commits on recovery).
func (t *Transaction) logDone() {
	if t.svc.log == nil {
		return
	}
	_, _ = t.svc.log.Append(RecordDone, encodeDone(t.id))
}
