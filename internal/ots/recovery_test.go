package ots

import (
	"errors"
	"sync"
	"testing"

	"github.com/extendedtx/activityservice/internal/wal"
)

// durableResource persists its prepared/committed state through a shared
// map, simulating a resource whose durable state survives process crashes.
type durableResource struct {
	mu    sync.Mutex
	name  string
	state *map[string]string // shared "disk": name -> "prepared"|"committed"|"rolledback"
}

func newDurable(name string, disk *map[string]string) *durableResource {
	return &durableResource{name: name, state: disk}
}

func (d *durableResource) set(s string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	(*d.state)[d.name] = s
}

func (d *durableResource) get() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return (*d.state)[d.name]
}

func (d *durableResource) Prepare() (Vote, error) {
	d.set("prepared")
	return VoteCommit, nil
}

func (d *durableResource) Commit() error {
	d.set("committed")
	return nil
}

func (d *durableResource) Rollback() error {
	d.set("rolledback")
	return nil
}

func (d *durableResource) CommitOnePhase() error { return d.Commit() }
func (d *durableResource) Forget() error         { return nil }
func (d *durableResource) RecoveryName() string  { return d.name }

func TestDecisionLoggedBeforePhaseTwo(t *testing.T) {
	log := wal.NewMemory()
	svc := NewService(WithLog(log))
	tx := svc.Begin()
	disk := map[string]string{}
	a, b := newDurable("res-a", &disk), newDurable("res-b", &disk)
	_ = tx.RegisterResource(a)
	_ = tx.RegisterResource(b)
	if err := tx.Commit(true); err != nil {
		t.Fatal(err)
	}
	recs, err := log.Records()
	if err != nil {
		t.Fatal(err)
	}
	var kinds []wal.Kind
	for _, r := range recs {
		kinds = append(kinds, r.Kind)
	}
	if len(kinds) != 2 || kinds[0] != RecordDecision || kinds[1] != RecordDone {
		t.Fatalf("log kinds = %v", kinds)
	}
	dec, err := decodeDecision(recs[0].Data)
	if err != nil {
		t.Fatal(err)
	}
	if dec.tx != tx.ID() || len(dec.names) != 2 {
		t.Fatalf("decision = %+v", dec)
	}
}

func TestRecoveryRedeliversCommit(t *testing.T) {
	// Crash between the decision record and phase two: after restart,
	// Recover must re-drive commit on the named resources.
	log := wal.NewMemory()
	svc := NewService(WithLog(log))
	disk := map[string]string{}
	tx := svc.Begin()
	a, b := newDurable("res-a", &disk), newDurable("res-b", &disk)
	_ = tx.RegisterResource(a)
	_ = tx.RegisterResource(b)
	if err := tx.Commit(true); err != nil {
		t.Fatal(err)
	}

	// Simulate the crash by replaying only the decision record into a new
	// service (drop the done marker).
	recs, _ := log.Records()
	crashLog := wal.NewMemory()
	if _, err := crashLog.Append(recs[0].Kind, recs[0].Data); err != nil {
		t.Fatal(err)
	}
	disk["res-a"] = "prepared" // phase two never reached them
	disk["res-b"] = "prepared"

	svc2 := NewService(WithLog(crashLog))
	svc2.Directory().Register("res-a", newDurable("res-a", &disk))
	svc2.Directory().Register("res-b", newDurable("res-b", &disk))
	stats, err := svc2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if stats.DecisionsReplayed != 1 || stats.ResourcesCommitted != 2 {
		t.Fatalf("stats = %+v", stats)
	}
	if disk["res-a"] != "committed" || disk["res-b"] != "committed" {
		t.Fatalf("disk = %v", disk)
	}
	// The pass appends a done marker so a second pass is a no-op.
	stats2, err := svc2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if stats2.DecisionsReplayed != 0 {
		t.Fatalf("second pass stats = %+v", stats2)
	}
}

func TestRecoveryWithMissingResourceKeepsDecision(t *testing.T) {
	log := wal.NewMemory()
	svc := NewService(WithLog(log))
	disk := map[string]string{}
	tx := svc.Begin()
	_ = tx.RegisterResource(newDurable("known", &disk))
	_ = tx.RegisterResource(newDurable("lost", &disk))
	if err := tx.Commit(true); err != nil {
		t.Fatal(err)
	}
	recs, _ := log.Records()
	crashLog := wal.NewMemory()
	if _, err := crashLog.Append(recs[0].Kind, recs[0].Data); err != nil {
		t.Fatal(err)
	}

	svc2 := NewService(WithLog(crashLog))
	svc2.Directory().Register("known", newDurable("known", &disk))
	stats, err := svc2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if stats.ResourcesMissing != 1 || stats.ResourcesCommitted != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	// The decision must survive for a later pass that has the binding.
	svc2.Directory().Register("lost", newDurable("lost", &disk))
	stats2, err := svc2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if stats2.ResourcesCommitted != 2 { // at-least-once: known re-committed
		t.Fatalf("second pass stats = %+v", stats2)
	}
	if disk["lost"] != "committed" {
		t.Fatalf("lost = %q", disk["lost"])
	}
}

func TestPresumedAbort(t *testing.T) {
	// A resource prepared under a transaction whose decision was never
	// logged must learn "rolled back" from ReplayCompletion.
	log := wal.NewMemory()
	svc := NewService(WithLog(log))
	st, err := svc.ReplayCompletion("in-doubt-res")
	if err != nil {
		t.Fatal(err)
	}
	if st != StatusRolledBack {
		t.Fatalf("status = %s, want rolled-back (presumed abort)", st)
	}

	// After a logged decision naming the resource, the answer flips.
	disk := map[string]string{}
	tx := svc.Begin()
	_ = tx.RegisterResource(newDurable("in-doubt-res", &disk))
	_ = tx.RegisterResource(newDurable("other", &disk))
	if err := tx.Commit(true); err != nil {
		t.Fatal(err)
	}
	st, err = svc.ReplayCompletion("in-doubt-res")
	if err != nil {
		t.Fatal(err)
	}
	if st != StatusCommitted {
		t.Fatalf("status = %s, want committed", st)
	}
}

func TestCheckpointDropsDeliveredDecisions(t *testing.T) {
	log := wal.NewMemory()
	svc := NewService(WithLog(log))
	disk := map[string]string{}
	for i := 0; i < 3; i++ {
		tx := svc.Begin()
		_ = tx.RegisterResource(newDurable("a", &disk))
		_ = tx.RegisterResource(newDurable("b", &disk))
		if err := tx.Commit(true); err != nil {
			t.Fatal(err)
		}
	}
	recs, _ := log.Records()
	if len(recs) != 6 { // 3 × (decision + done)
		t.Fatalf("pre-checkpoint records = %d", len(recs))
	}
	if err := svc.CheckpointLog(); err != nil {
		t.Fatal(err)
	}
	recs, _ = log.Records()
	if len(recs) != 0 {
		t.Fatalf("post-checkpoint records = %d, want 0", len(recs))
	}
}

func TestDecisionLogFailureForcesRollback(t *testing.T) {
	log := wal.NewMemory()
	log.InjectCrashAfter(0) // the very first append fails
	svc := NewService(WithLog(log))
	disk := map[string]string{}
	tx := svc.Begin()
	a, b := newDurable("a", &disk), newDurable("b", &disk)
	_ = tx.RegisterResource(a)
	_ = tx.RegisterResource(b)
	err := tx.Commit(true)
	if !errors.Is(err, ErrRolledBack) {
		t.Fatalf("err = %v, want ErrRolledBack", err)
	}
	if disk["a"] != "rolledback" || disk["b"] != "rolledback" {
		t.Fatalf("disk = %v", disk)
	}
}

func TestDecisionRecordRoundTrip(t *testing.T) {
	svcGen := NewService()
	tx := svcGen.Begin()
	names := []string{"alpha", "beta", "with space", ""}
	b := encodeDecision(tx.ID(), names[:3])
	rec, err := decodeDecision(b)
	if err != nil {
		t.Fatal(err)
	}
	if rec.tx != tx.ID() || len(rec.names) != 3 || rec.names[2] != "with space" {
		t.Fatalf("rec = %+v", rec)
	}
	if _, err := decodeDecision(b[:10]); err == nil {
		t.Fatal("short decision record accepted")
	}
	if _, err := decodeDone([]byte{1, 2}); err == nil {
		t.Fatal("short done record accepted")
	}
}
