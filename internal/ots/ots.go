// Package ots implements the transaction-service substrate the Activity
// Service builds on: an Object Transaction Service in the style of
// CosTransactions.
//
// It provides flat and nested transactions, two-phase commit with presumed
// abort and a durable commit-decision record (via internal/wal), the
// one-phase optimisation, read-only votes, synchronizations, heuristic
// outcome reporting, transaction timeouts and crash recovery. Nested
// transactions follow the semantics the paper's introduction describes:
// a subtransaction's commit is provisional and its resources are inherited
// by the parent; durability belongs to the top-level transaction alone.
package ots

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/extendedtx/activityservice/internal/ids"
	"github.com/extendedtx/activityservice/internal/wal"
)

// Transaction service errors.
var (
	// ErrInactive reports an operation on a transaction that is no longer
	// accepting it (completed, completing, or unknown).
	ErrInactive = errors.New("ots: transaction is not active")
	// ErrRolledBack reports that commit was requested but the transaction
	// rolled back.
	ErrRolledBack = errors.New("ots: transaction rolled back")
	// ErrHeuristicMixed reports that some participants committed and some
	// rolled back.
	ErrHeuristicMixed = errors.New("ots: heuristic mixed outcome")
	// ErrHeuristicHazard reports that the outcome of some participants is
	// unknown.
	ErrHeuristicHazard = errors.New("ots: heuristic hazard")
	// ErrHeuristicCommit is returned (wrapped) by a participant's Rollback
	// when it had already, unilaterally, committed its prepared work — the
	// CosTransactions HeuristicCommit exception.
	ErrHeuristicCommit = errors.New("ots: participant heuristically committed")
	// ErrHeuristicRollback is returned (wrapped) by a participant's Commit
	// when it had already, unilaterally, rolled back its prepared work —
	// the CosTransactions HeuristicRollback exception.
	ErrHeuristicRollback = errors.New("ots: participant heuristically rolled back")
)

// Service is the transaction factory and recovery home. It corresponds to
// the TransactionFactory plus the per-ORB recovery machinery.
type Service struct {
	gen        *ids.Generator
	log        *wal.Log
	dir        *Directory
	retries    int
	retryDelay time.Duration

	hook            func(Event)
	decisionBarrier func(lsn uint64)
	decisionGate    func(lsn uint64) error

	mu       sync.Mutex
	inflight map[ids.UID]*Transaction

	// viewMu guards the cached decision-log view shared by every recovery
	// entry point (see recovery.go): one scan serves Recover,
	// ReplayCompletion, Heuristics and CheckpointLog until invalidated.
	viewMu sync.Mutex
	view   *logView

	// totMu guards the cumulative recovery totals the admin scrape reads.
	totMu  sync.Mutex
	totals RecoveryTotals
}

// Option configures a Service.
type Option interface {
	apply(*Service)
}

type optionFunc func(*Service)

func (f optionFunc) apply(s *Service) { f(s) }

// WithLog makes commit decisions durable in l, enabling recovery.
func WithLog(l *wal.Log) Option {
	return optionFunc(func(s *Service) { s.log = l })
}

// WithDirectory sets the resource directory used to re-bind named
// resources during recovery.
func WithDirectory(d *Directory) Option {
	return optionFunc(func(s *Service) { s.dir = d })
}

// WithRetryPolicy sets how many times phase-two delivery is retried per
// resource and the delay between attempts.
func WithRetryPolicy(attempts int, delay time.Duration) Option {
	return optionFunc(func(s *Service) {
		if attempts > 0 {
			s.retries = attempts
		}
		s.retryDelay = delay
	})
}

// WithEventHook installs a synchronous observer of top-level commit
// protocol steps: phase-one completion, the durable decision, each
// phase-two delivery and the done record. The hook runs inline on the
// committing goroutine, which is what lets crash-restart tests kill the
// process at an exact protocol boundary; production observers must return
// quickly.
func WithEventHook(fn func(Event)) Option {
	return optionFunc(func(s *Service) { s.hook = fn })
}

// WithDecisionBarrier installs a hook invoked after each commit decision
// is durable in the local log (with the decision record's LSN), before any
// phase-two delivery starts. A replicated coordinator uses it to wait —
// bounded by its own timeout — for a standby to acknowledge the decision,
// making takeover-after-decision deterministic (semi-synchronous
// replication). The barrier cannot veto: the decision is already durable
// locally, so aborting because a standby is slow would risk mixed
// outcomes; a barrier that times out simply degrades to asynchronous
// shipping. It runs inline on the committing goroutine.
func WithDecisionBarrier(fn func(lsn uint64)) Option {
	return optionFunc(func(s *Service) { s.decisionBarrier = fn })
}

// WithDecisionGate installs an error-returning barrier invoked after each
// commit decision is appended to the local log but before the decision is
// folded into the recovery view or any phase-two delivery starts. Unlike
// WithDecisionBarrier, the gate CAN veto: a coordinator-group leader uses
// it to detect that it was deposed (fenced) between appending the
// decision and releasing phase two — the new leader's history does not
// contain the decision, so delivering commits from it would split the
// outcome. A vetoed decision unwinds exactly like a failed append: every
// prepared participant is rolled back and the terminator sees
// ErrRolledBack. The orphan decision record left in the deposed leader's
// log is removed by its automatic rejoin truncation (it is beyond the new
// term's start, so it is never replayed by any elected leader); the
// deposed process must rejoin before running Recover on that log. A slow
// standby must NOT veto — only a raised fence should; timeouts should
// degrade to asynchronous shipping as with the barrier. The gate runs
// inline on the committing goroutine, before the barrier when both are
// set.
func WithDecisionGate(fn func(lsn uint64) error) Option {
	return optionFunc(func(s *Service) { s.decisionGate = fn })
}

// NewService returns a transaction service.
func NewService(opts ...Option) *Service {
	s := &Service{
		gen:        ids.NewGenerator(),
		dir:        NewDirectory(),
		retries:    3,
		retryDelay: time.Millisecond,
		inflight:   make(map[ids.UID]*Transaction),
	}
	for _, o := range opts {
		o.apply(s)
	}
	return s
}

// Directory returns the service's resource directory.
func (s *Service) Directory() *Directory { return s.dir }

// BeginOption configures one transaction.
type BeginOption interface {
	applyBegin(*Transaction)
}

type beginOptionFunc func(*Transaction)

func (f beginOptionFunc) applyBegin(t *Transaction) { f(t) }

// WithTimeout marks the transaction rollback-only if it is still active
// after d.
func WithTimeout(d time.Duration) BeginOption {
	return beginOptionFunc(func(t *Transaction) { t.timeout = d })
}

// Begin creates a new top-level transaction.
func (s *Service) Begin(opts ...BeginOption) *Transaction {
	t := s.newTransaction(nil, opts...)
	s.mu.Lock()
	s.inflight[t.id] = t
	s.mu.Unlock()
	return t
}

func (s *Service) newTransaction(parent *Transaction, opts ...BeginOption) *Transaction {
	t := &Transaction{
		svc:      s,
		id:       s.gen.New(),
		parent:   parent,
		status:   StatusActive,
		children: make(map[ids.UID]*Transaction),
	}
	for _, o := range opts {
		o.applyBegin(t)
	}
	if t.timeout > 0 {
		t.timer = time.AfterFunc(t.timeout, func() {
			// Best effort: the transaction may have completed already.
			_ = t.RollbackOnly()
		})
	}
	return t
}

// Inflight returns the number of live top-level transactions.
func (s *Service) Inflight() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.inflight)
}

// emit delivers e to the installed event hook, if any.
func (s *Service) emit(e Event) {
	if s.hook != nil {
		s.hook(e)
	}
}

func (s *Service) forget(t *Transaction) {
	s.mu.Lock()
	delete(s.inflight, t.id)
	s.mu.Unlock()
}

// registeredResource pairs a resource with its optional recovery name.
type registeredResource struct {
	res  Resource
	name string // empty when not recoverable
}

// Transaction is a transaction in the CosTransactions sense: it exposes the
// Control surface (identity), the Coordinator surface (registration,
// subtransactions) and the Terminator surface (commit/rollback).
type Transaction struct {
	svc     *Service
	id      ids.UID
	parent  *Transaction
	timeout time.Duration
	timer   *time.Timer

	mu        sync.Mutex
	status    Status
	resources []registeredResource
	syncs     []Synchronization
	children  map[ids.UID]*Transaction
}

// ID returns the transaction identifier.
func (t *Transaction) ID() ids.UID { return t.id }

// Parent returns the enclosing transaction, or nil for a top-level one.
func (t *Transaction) Parent() *Transaction { return t.parent }

// IsTopLevel reports whether the transaction has no parent.
func (t *Transaction) IsTopLevel() bool { return t.parent == nil }

// TopLevel returns the root of the nesting hierarchy.
func (t *Transaction) TopLevel() *Transaction {
	for t.parent != nil {
		t = t.parent
	}
	return t
}

// Depth returns 0 for a top-level transaction, 1 for its children, etc.
func (t *Transaction) Depth() int {
	d := 0
	for p := t.parent; p != nil; p = p.parent {
		d++
	}
	return d
}

// Status returns the current status.
func (t *Transaction) Status() Status {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.status
}

// IsSame reports whether o denotes the same transaction.
func (t *Transaction) IsSame(o *Transaction) bool {
	return o != nil && t.id == o.id
}

// RegisterResource enlists r as a 2PC participant. If r is a NamedResource
// its name is written to the commit decision record for recovery.
func (t *Transaction) RegisterResource(r Resource) error {
	name := ""
	if nr, ok := r.(NamedResource); ok {
		name = nr.RecoveryName()
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.status != StatusActive && t.status != StatusMarkedRollback {
		return fmt.Errorf("%w: cannot register resource in status %s", ErrInactive, t.status)
	}
	t.resources = append(t.resources, registeredResource{res: r, name: name})
	return nil
}

// RegisterSynchronization enlists a before/after completion callback.
// Synchronizations only run at top-level completion, per CosTransactions.
func (t *Transaction) RegisterSynchronization(s Synchronization) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.status != StatusActive && t.status != StatusMarkedRollback {
		return fmt.Errorf("%w: cannot register synchronization in status %s", ErrInactive, t.status)
	}
	t.syncs = append(t.syncs, s)
	return nil
}

// RollbackOnly constrains the transaction to roll back.
func (t *Transaction) RollbackOnly() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	switch t.status {
	case StatusActive:
		t.status = StatusMarkedRollback
		return nil
	case StatusMarkedRollback:
		return nil
	default:
		return fmt.Errorf("%w: status %s", ErrInactive, t.status)
	}
}

// BeginSubtransaction starts a nested transaction.
func (t *Transaction) BeginSubtransaction() (*Transaction, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.status != StatusActive {
		return nil, fmt.Errorf("%w: cannot nest under status %s", ErrInactive, t.status)
	}
	child := t.svc.newTransaction(t)
	t.children[child.id] = child
	return child, nil
}

// activeChildren snapshots the children that have not reached a terminal
// state.
func (t *Transaction) activeChildren() []*Transaction {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []*Transaction
	for _, c := range t.children {
		if !c.Status().Terminal() {
			out = append(out, c)
		}
	}
	return out
}

func (t *Transaction) removeChild(c *Transaction) {
	t.mu.Lock()
	delete(t.children, c.id)
	t.mu.Unlock()
}

// Commit drives the transaction to completion. For a top-level transaction
// this is two-phase commit (with the one-phase and read-only
// optimisations); for a subtransaction it is a provisional commit that
// propagates the registered resources to the parent.
//
// When reportHeuristics is true, heuristic phase-two outcomes are returned
// as ErrHeuristicMixed / ErrHeuristicHazard even though the logical
// outcome is commit.
func (t *Transaction) Commit(reportHeuristics bool) error {
	if t.timer != nil {
		t.timer.Stop()
	}
	// Outstanding subtransactions are rolled back and force the parent to
	// roll back too: committing around live children would violate nesting.
	if kids := t.activeChildren(); len(kids) > 0 {
		for _, c := range kids {
			_ = c.Rollback()
		}
		_ = t.Rollback()
		return fmt.Errorf("%w: outstanding subtransactions", ErrRolledBack)
	}
	if !t.IsTopLevel() {
		return t.commitNested()
	}

	t.mu.Lock()
	switch t.status {
	case StatusActive:
	case StatusMarkedRollback:
		t.mu.Unlock()
		_ = t.Rollback()
		return fmt.Errorf("%w: marked rollback-only", ErrRolledBack)
	default:
		st := t.status
		t.mu.Unlock()
		return fmt.Errorf("%w: status %s", ErrInactive, st)
	}
	syncs := append([]Synchronization(nil), t.syncs...)
	t.mu.Unlock()

	// before_completion outside the lock; an error forces rollback.
	for _, s := range syncs {
		if err := s.BeforeCompletion(); err != nil {
			_ = t.Rollback()
			return fmt.Errorf("%w: before-completion: %v", ErrRolledBack, err)
		}
	}

	t.mu.Lock()
	if t.status != StatusActive { // marked rollback-only concurrently
		t.mu.Unlock()
		_ = t.Rollback()
		return fmt.Errorf("%w: marked rollback-only", ErrRolledBack)
	}
	t.status = StatusPreparing
	resources := append([]registeredResource(nil), t.resources...)
	t.mu.Unlock()

	err := t.completeTopLevel(resources, reportHeuristics)
	t.finish(syncs)
	return err
}

// completeTopLevel runs the commit protocol over the snapshot of
// registered resources. The caller has set status to StatusPreparing.
func (t *Transaction) completeTopLevel(resources []registeredResource, reportHeuristics bool) error {
	// One-phase optimisation.
	if len(resources) == 0 {
		t.setStatus(StatusCommitted)
		return nil
	}
	if len(resources) == 1 {
		t.setStatus(StatusCommitting)
		if err := resources[0].res.CommitOnePhase(); err != nil {
			t.setStatus(StatusRolledBack)
			return fmt.Errorf("%w: one-phase commit: %v", ErrRolledBack, err)
		}
		t.setStatus(StatusCommitted)
		return nil
	}

	// Phase one.
	prepared := make([]registeredResource, 0, len(resources))
	for i, rr := range resources {
		vote, err := rr.res.Prepare()
		if err != nil {
			vote = VoteRollback
		}
		switch vote {
		case VoteCommit:
			prepared = append(prepared, rr)
		case VoteReadOnly:
			// Drop: no phase two for read-only participants.
		default: // VoteRollback or error
			// The vetoing resource has rolled itself back. Roll back the
			// already-prepared and the not-yet-asked participants.
			t.setStatus(StatusRollingBack)
			for _, p := range prepared {
				t.deliverRollback(p)
			}
			for _, rest := range resources[i+1:] {
				t.deliverRollback(rest)
			}
			t.setStatus(StatusRolledBack)
			if err != nil {
				return fmt.Errorf("%w: prepare failed: %v", ErrRolledBack, err)
			}
			return fmt.Errorf("%w: participant voted rollback", ErrRolledBack)
		}
	}
	if len(prepared) == 0 { // everyone read-only
		t.setStatus(StatusCommitted)
		return nil
	}
	t.setStatus(StatusPrepared)
	t.svc.emit(Event{Tx: t.id, Stage: StagePrepared})

	// Commit point: the decision record must be durable before phase two
	// (presumed abort — without it, recovery rolls back).
	if err := t.logDecision(prepared); err != nil {
		t.setStatus(StatusRollingBack)
		for _, p := range prepared {
			t.deliverRollback(p)
		}
		t.setStatus(StatusRolledBack)
		// Both wrapped: callers unwind on ErrRolledBack, and a decision-gate
		// veto keeps its cause inspectable (a deposed coordinator's FENCED
		// system exception carries the leader hint clients redirect on).
		return fmt.Errorf("%w: decision log: %w", ErrRolledBack, err)
	}
	t.svc.emit(Event{Tx: t.id, Stage: StageDecisionLogged})

	// Phase two. Three outcomes per participant: delivered, heuristically
	// resolved (the participant decided unilaterally after prepare — a
	// definitive, durably recorded divergence), or failed (outcome
	// unknown). Only delivery failures keep the decision record live: the
	// participant is still prepared and Recover() must re-drive it, so the
	// done record may be appended only when no delivery failed and the
	// participant must NOT be told to Forget — forgetting would discard
	// the very recovery state the replay needs.
	t.setStatus(StatusCommitting)
	committed, failed, damaged := 0, 0, 0
	for _, p := range prepared {
		err := t.deliverCommit(p.res)
		switch {
		case err == nil:
			committed++
			t.svc.emit(Event{Tx: t.id, Stage: StageCommitDelivered, Resource: p.name})
		case errors.Is(err, ErrHeuristicRollback):
			damaged++
			t.svc.recordHeuristic(t.id, p.name, StatusRolledBack)
		case errors.Is(err, ErrHeuristicCommit):
			// The participant jumped the gun in the direction the decision
			// took anyway: converged, but the heuristic is still recorded
			// so operators can audit it until ForgetHeuristics.
			committed++
			t.svc.recordHeuristic(t.id, p.name, StatusCommitted)
		default:
			failed++
		}
	}
	t.setStatus(StatusCommitted)
	if failed == 0 {
		t.logDone()
		t.svc.emit(Event{Tx: t.id, Stage: StageDone})
	}
	if reportHeuristics {
		switch {
		case damaged > 0:
			return fmt.Errorf("%w: %d committed, %d heuristically rolled back, %d undelivered",
				ErrHeuristicMixed, committed, damaged, failed)
		case failed > 0 && committed > 0:
			return fmt.Errorf("%w: %d committed, %d failed", ErrHeuristicMixed, committed, failed)
		case failed > 0:
			return fmt.Errorf("%w: all %d phase-two deliveries failed", ErrHeuristicHazard, failed)
		}
	}
	return nil
}

// deliverRollback rolls one participant back, capturing a heuristic
// commit (the participant unilaterally committed after prepare) as
// durable heuristic damage.
func (t *Transaction) deliverRollback(rr registeredResource) {
	if err := rr.res.Rollback(); err != nil && errors.Is(err, ErrHeuristicCommit) {
		t.svc.recordHeuristic(t.id, rr.name, StatusCommitted)
	}
}

// deliverCommit retries phase-two delivery per the service retry policy.
func (t *Transaction) deliverCommit(r Resource) error {
	var err error
	for attempt := 0; attempt < t.svc.retries; attempt++ {
		if err = r.Commit(); err == nil {
			return nil
		}
		if t.svc.retryDelay > 0 {
			time.Sleep(t.svc.retryDelay)
		}
	}
	return err
}

// commitNested provisionally commits a subtransaction: resources propagate
// to the parent, and subtransaction-aware resources are told.
func (t *Transaction) commitNested() error {
	t.mu.Lock()
	switch t.status {
	case StatusActive:
	case StatusMarkedRollback:
		t.mu.Unlock()
		_ = t.Rollback()
		return fmt.Errorf("%w: marked rollback-only", ErrRolledBack)
	default:
		st := t.status
		t.mu.Unlock()
		return fmt.Errorf("%w: status %s", ErrInactive, st)
	}
	t.status = StatusCommitting
	resources := append([]registeredResource(nil), t.resources...)
	t.mu.Unlock()

	for _, rr := range resources {
		if aware, ok := rr.res.(SubtransactionAwareResource); ok {
			if err := aware.CommitSubtransaction(t.parent); err != nil {
				// A refusal vetoes the provisional commit.
				t.setStatus(StatusActive)
				_ = t.Rollback()
				return fmt.Errorf("%w: subtransaction commit refused: %v", ErrRolledBack, err)
			}
		}
	}
	// Inheritance: the parent adopts every registered resource (the paper:
	// "Resources acquired within a subtransaction are inherited (retained)
	// by parent transactions upon the commit of the subtransaction").
	t.parent.adopt(resources)
	t.setStatus(StatusCommitted)
	t.parent.removeChild(t)
	return nil
}

func (t *Transaction) adopt(resources []registeredResource) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.resources = append(t.resources, resources...)
}

// Rollback undoes the transaction. For subtransactions,
// subtransaction-aware resources receive RollbackSubtransaction; plain
// resources are rolled back directly.
func (t *Transaction) Rollback() error {
	if t.timer != nil {
		t.timer.Stop()
	}
	// Cascade into live children first.
	for _, c := range t.activeChildren() {
		_ = c.Rollback()
	}

	t.mu.Lock()
	switch t.status {
	case StatusActive, StatusMarkedRollback:
	default:
		st := t.status
		t.mu.Unlock()
		return fmt.Errorf("%w: status %s", ErrInactive, st)
	}
	t.status = StatusRollingBack
	resources := append([]registeredResource(nil), t.resources...)
	syncs := append([]Synchronization(nil), t.syncs...)
	t.mu.Unlock()

	for _, rr := range resources {
		if !t.IsTopLevel() {
			if aware, ok := rr.res.(SubtransactionAwareResource); ok {
				_ = aware.RollbackSubtransaction()
				continue
			}
			_ = rr.res.Rollback()
			continue
		}
		t.deliverRollback(rr)
	}
	t.setStatus(StatusRolledBack)
	if t.parent != nil {
		t.parent.removeChild(t)
	}
	if t.IsTopLevel() {
		t.finish(syncs)
	}
	return nil
}

// finish runs after-completion synchronizations and forgets the
// transaction.
func (t *Transaction) finish(syncs []Synchronization) {
	st := t.Status()
	for _, s := range syncs {
		s.AfterCompletion(st)
	}
	t.svc.forget(t)
}

func (t *Transaction) setStatus(s Status) {
	t.mu.Lock()
	t.status = s
	t.mu.Unlock()
}
