package ots

import (
	"context"
	"fmt"
)

// contextKey is the private key type for transaction propagation.
type contextKey struct{}

// WithTransaction returns a context carrying tx, the Go analogue of the
// CORBA per-thread transaction Current.
func WithTransaction(ctx context.Context, tx *Transaction) context.Context {
	return context.WithValue(ctx, contextKey{}, tx)
}

// FromContext returns the transaction carried by ctx, if any. A context
// whose transaction was popped by Current.Commit/Rollback carries none.
func FromContext(ctx context.Context) (*Transaction, bool) {
	tx, _ := ctx.Value(contextKey{}).(*Transaction)
	return tx, tx != nil
}

// Current provides CosTransactions::Current-style demarcation over
// context.Context: Begin nests automatically when the context already
// carries a transaction.
type Current struct {
	svc *Service
}

// NewCurrent returns a Current bound to svc.
func NewCurrent(svc *Service) *Current { return &Current{svc: svc} }

// Begin starts a transaction. If ctx already carries one, the new
// transaction is a subtransaction of it. The returned context carries the
// new transaction.
func (c *Current) Begin(ctx context.Context, opts ...BeginOption) (context.Context, *Transaction, error) {
	if parent, ok := FromContext(ctx); ok {
		sub, err := parent.BeginSubtransaction()
		if err != nil {
			return ctx, nil, err
		}
		return WithTransaction(ctx, sub), sub, nil
	}
	tx := c.svc.Begin(opts...)
	return WithTransaction(ctx, tx), tx, nil
}

// Commit completes the context's transaction and returns a context
// carrying its parent (or none for a top-level transaction).
func (c *Current) Commit(ctx context.Context, reportHeuristics bool) (context.Context, error) {
	tx, ok := FromContext(ctx)
	if !ok {
		return ctx, fmt.Errorf("%w: no transaction in context", ErrInactive)
	}
	err := tx.Commit(reportHeuristics)
	return c.pop(ctx, tx), err
}

// Rollback undoes the context's transaction and returns a context carrying
// its parent.
func (c *Current) Rollback(ctx context.Context) (context.Context, error) {
	tx, ok := FromContext(ctx)
	if !ok {
		return ctx, fmt.Errorf("%w: no transaction in context", ErrInactive)
	}
	err := tx.Rollback()
	return c.pop(ctx, tx), err
}

// RollbackOnly marks the context's transaction rollback-only.
func (c *Current) RollbackOnly(ctx context.Context) error {
	tx, ok := FromContext(ctx)
	if !ok {
		return fmt.Errorf("%w: no transaction in context", ErrInactive)
	}
	return tx.RollbackOnly()
}

// Status returns the status of the context's transaction, or false when
// the context carries none.
func (c *Current) Status(ctx context.Context) (Status, bool) {
	tx, ok := FromContext(ctx)
	if !ok {
		return 0, false
	}
	return tx.Status(), true
}

func (c *Current) pop(ctx context.Context, tx *Transaction) context.Context {
	if tx.Parent() != nil {
		return WithTransaction(ctx, tx.Parent())
	}
	return WithTransaction(ctx, nil)
}
