package ots

import "fmt"

// Status is the state of a transaction, following the CosTransactions
// status vocabulary.
type Status int

// StatusUnknown is the zero Status: the outcome could not be determined
// (for example, a recovery query that failed in transit).
const StatusUnknown Status = 0

// Transaction statuses.
const (
	// StatusActive means the transaction accepts work and registrations.
	StatusActive Status = iota + 1
	// StatusMarkedRollback means the transaction is active but can only
	// roll back (rollback_only was called or the timeout fired).
	StatusMarkedRollback
	// StatusPreparing means phase one of 2PC is running.
	StatusPreparing
	// StatusPrepared means every participant voted and the decision has not
	// yet been taken.
	StatusPrepared
	// StatusCommitting means phase two is delivering commit to participants.
	StatusCommitting
	// StatusCommitted is terminal: the transaction committed.
	StatusCommitted
	// StatusRollingBack means rollback is being delivered to participants.
	StatusRollingBack
	// StatusRolledBack is terminal: the transaction rolled back.
	StatusRolledBack
)

var statusNames = map[Status]string{
	StatusUnknown:        "unknown",
	StatusActive:         "active",
	StatusMarkedRollback: "marked-rollback",
	StatusPreparing:      "preparing",
	StatusPrepared:       "prepared",
	StatusCommitting:     "committing",
	StatusCommitted:      "committed",
	StatusRollingBack:    "rolling-back",
	StatusRolledBack:     "rolled-back",
}

// String returns the lower-case CosTransactions-style name.
func (s Status) String() string {
	if n, ok := statusNames[s]; ok {
		return n
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// Terminal reports whether the status is an end state.
func (s Status) Terminal() bool {
	return s == StatusCommitted || s == StatusRolledBack
}

// Vote is a participant's phase-one answer.
type Vote int

// Phase-one votes.
const (
	// VoteCommit means the participant is prepared and will commit or roll
	// back as instructed.
	VoteCommit Vote = iota + 1
	// VoteRollback vetoes the transaction.
	VoteRollback
	// VoteReadOnly means the participant did no undoable work and needs no
	// phase two.
	VoteReadOnly
)

// String returns "commit", "rollback" or "read-only".
func (v Vote) String() string {
	switch v {
	case VoteCommit:
		return "commit"
	case VoteRollback:
		return "rollback"
	case VoteReadOnly:
		return "read-only"
	default:
		return fmt.Sprintf("Vote(%d)", int(v))
	}
}
