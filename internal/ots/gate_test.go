package ots

import (
	"errors"
	"testing"

	"github.com/extendedtx/activityservice/internal/wal"
)

// TestDecisionGateVetoRollsBack: a gate veto (the coordinator was fenced
// between appending the decision and releasing phase two) must unwind
// like a failed decision append — every prepared participant rolled
// back, no commit delivered, ErrRolledBack to the terminator.
func TestDecisionGateVetoRollsBack(t *testing.T) {
	fenced := errors.New("deposed mid-commit")
	var gateLSN uint64
	svc := NewService(
		WithLog(wal.NewMemory()),
		WithDecisionGate(func(lsn uint64) error {
			gateLSN = lsn
			return fenced
		}))
	tx := svc.Begin()
	a, b := newFake("a"), newFake("b")
	if err := tx.RegisterResource(a); err != nil {
		t.Fatal(err)
	}
	if err := tx.RegisterResource(b); err != nil {
		t.Fatal(err)
	}
	err := tx.Commit(true)
	if !errors.Is(err, ErrRolledBack) || !errors.Is(err, fenced) {
		t.Fatalf("vetoed commit = %v, want ErrRolledBack wrapping the veto", err)
	}
	if gateLSN == 0 {
		t.Fatal("gate never saw the decision LSN")
	}
	for _, r := range []*fakeResource{a, b} {
		calls := r.Calls()
		if len(calls) != 2 || calls[0] != "prepare" || calls[1] != "rollback" {
			t.Fatalf("%s calls = %v, want prepare then rollback", r.name, calls)
		}
	}
	if tx.Status() != StatusRolledBack {
		t.Fatalf("status = %s, want rolled back", tx.Status())
	}
}

// TestDecisionGateOrderAndPassThrough: an accepting gate runs between the
// decision append and the barrier, and the commit proceeds normally.
func TestDecisionGateOrderAndPassThrough(t *testing.T) {
	var order []string
	svc := NewService(
		WithLog(wal.NewMemory()),
		WithDecisionGate(func(lsn uint64) error {
			order = append(order, "gate")
			return nil
		}),
		WithDecisionBarrier(func(lsn uint64) {
			order = append(order, "barrier")
		}))
	tx := svc.Begin()
	a, b := newFake("a"), newFake("b")
	_ = tx.RegisterResource(a)
	_ = tx.RegisterResource(b)
	if err := tx.Commit(true); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "gate" || order[1] != "barrier" {
		t.Fatalf("hook order = %v, want gate then barrier", order)
	}
	for _, r := range []*fakeResource{a, b} {
		calls := r.Calls()
		if len(calls) != 2 || calls[1] != "commit" {
			t.Fatalf("%s calls = %v, want prepare then commit", r.name, calls)
		}
	}
}
