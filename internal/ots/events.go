package ots

import (
	"fmt"

	"github.com/extendedtx/activityservice/internal/ids"
)

// Stage identifies one boundary of the top-level commit protocol, in the
// order a committing transaction crosses them. The stages are exactly the
// crash boundaries the recovery machinery reasons about: a crash before
// StageDecisionLogged is presumed abort, a crash after it (and before
// StageDone) leaves a decision that Recover must re-drive.
type Stage int

// Commit protocol stages, in protocol order.
const (
	// StagePrepared fires when every participant has voted and none
	// vetoed — the transaction is prepared but the decision is not yet
	// durable. A crash here is resolved by presumed abort.
	StagePrepared Stage = iota + 1
	// StageDecisionLogged fires when the commit decision record is
	// durable. From here on the transaction commits, whatever happens.
	StageDecisionLogged
	// StageCommitDelivered fires once per participant whose phase-two
	// commit delivery succeeded; Event.Resource carries its recovery name.
	StageCommitDelivered
	// StageDone fires when the done record is appended, marking the
	// decision fully delivered and checkpointable.
	StageDone
)

// String returns the stage's lower-case name.
func (s Stage) String() string {
	switch s {
	case StagePrepared:
		return "prepared"
	case StageDecisionLogged:
		return "decision-logged"
	case StageCommitDelivered:
		return "commit-delivered"
	case StageDone:
		return "done"
	default:
		return fmt.Sprintf("Stage(%d)", int(s))
	}
}

// Event is one observed commit-protocol step (see WithEventHook).
type Event struct {
	// Tx identifies the committing transaction.
	Tx ids.UID
	// Stage is the protocol boundary just crossed.
	Stage Stage
	// Resource is the participant's recovery name for per-resource stages
	// (StageCommitDelivered); empty otherwise.
	Resource string
}
