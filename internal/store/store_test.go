package store

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

func TestPutGet(t *testing.T) {
	s := New()
	v1 := s.Put("k", []byte("one"))
	got, ver, ok := s.Get("k")
	if !ok || !bytes.Equal(got, []byte("one")) || ver != v1 {
		t.Fatalf("got %q ver %d ok %v", got, ver, ok)
	}
	if _, _, ok := s.Get("missing"); ok {
		t.Fatal("missing key found")
	}
}

func TestVersionsIncrease(t *testing.T) {
	s := New()
	prev := uint64(0)
	for i := 0; i < 10; i++ {
		v := s.Put("k", []byte{byte(i)})
		if v <= prev {
			t.Fatalf("version %d not > %d", v, prev)
		}
		prev = v
	}
	other := s.Put("other", nil)
	if other <= prev {
		t.Fatal("global version not monotonic across keys")
	}
}

func TestCompareAndPut(t *testing.T) {
	s := New()
	// Create when absent: expect 0.
	v, ok := s.CompareAndPut("k", []byte("a"), 0)
	if !ok || v == 0 {
		t.Fatalf("create: v=%d ok=%v", v, ok)
	}
	// Stale expectation fails and reports current version.
	cur, ok := s.CompareAndPut("k", []byte("b"), v+99)
	if ok || cur != v {
		t.Fatalf("stale CAS: cur=%d ok=%v", cur, ok)
	}
	// Correct expectation succeeds.
	v2, ok := s.CompareAndPut("k", []byte("b"), v)
	if !ok || v2 <= v {
		t.Fatalf("CAS: v2=%d ok=%v", v2, ok)
	}
	got, _, _ := s.Get("k")
	if string(got) != "b" {
		t.Fatalf("value = %q", got)
	}
}

func TestDelete(t *testing.T) {
	s := New()
	s.Put("k", []byte("x"))
	if !s.Delete("k") {
		t.Fatal("delete existing returned false")
	}
	if s.Delete("k") {
		t.Fatal("delete missing returned true")
	}
	if s.Version("k") != 0 {
		t.Fatal("deleted key has version")
	}
}

func TestGetReturnsCopy(t *testing.T) {
	s := New()
	s.Put("k", []byte("abc"))
	got, _, _ := s.Get("k")
	got[0] = 'Z'
	again, _, _ := s.Get("k")
	if string(again) != "abc" {
		t.Fatalf("store mutated through returned slice: %q", again)
	}
}

func TestKeysSorted(t *testing.T) {
	s := New()
	for _, k := range []string{"zeta", "alpha", "mid"} {
		s.Put(k, nil)
	}
	keys := s.Keys()
	want := []string{"alpha", "mid", "zeta"}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("keys = %v", keys)
		}
	}
	if s.Len() != 3 {
		t.Fatalf("len = %d", s.Len())
	}
}

func TestSnapshotRestore(t *testing.T) {
	s := New()
	s.Put("a", []byte("1"))
	s.Put("b", []byte("2"))
	snap := s.Snapshot()

	s.Put("a", []byte("dirty"))
	s.Delete("b")
	s.Put("c", []byte("3"))

	s.Restore(snap)
	if got, _, _ := s.Get("a"); string(got) != "1" {
		t.Fatalf("a = %q after restore", got)
	}
	if got, _, ok := s.Get("b"); !ok || string(got) != "2" {
		t.Fatalf("b = %q ok=%v after restore", got, ok)
	}
	if _, _, ok := s.Get("c"); ok {
		t.Fatal("c survived restore")
	}
	// Versions must stay monotonic after restore.
	before := s.Version("a")
	v := s.Put("a", []byte("post"))
	if v <= before {
		t.Fatalf("version went backwards: %d <= %d", v, before)
	}
}

func TestSnapshotIsDeep(t *testing.T) {
	s := New()
	s.Put("k", []byte("orig"))
	snap := s.Snapshot()
	snap["k"].Value[0] = 'X'
	if got, _, _ := s.Get("k"); string(got) != "orig" {
		t.Fatalf("snapshot aliases store: %q", got)
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			key := fmt.Sprintf("k%d", id)
			for i := 0; i < 200; i++ {
				s.Put(key, []byte{byte(i)})
				if v, _, ok := s.Get(key); !ok || int(v[0]) > i {
					t.Errorf("lost write on %s", key)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if s.Len() != 8 {
		t.Fatalf("len = %d", s.Len())
	}
}

func TestQuickPutGetRoundTrip(t *testing.T) {
	f := func(key string, val []byte) bool {
		s := New()
		s.Put(key, val)
		got, _, ok := s.Get(key)
		return ok && bytes.Equal(got, val)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
