// Package store is the persistence service of the paper's fig. 3: a
// versioned key-value object store.
//
// Recoverable application objects (the examples' bulletin boards, name
// server databases and booking services) keep their committed state here.
// Every Put returns a monotonically increasing version, which the LRUOW
// model uses for its performance-phase consistency predicates, and
// snapshots give transactions before-images for rollback.
package store

import (
	"sort"
	"sync"
)

// Versioned is a value with its version number.
type Versioned struct {
	Value   []byte
	Version uint64
}

// Store is an in-memory versioned KV store, safe for concurrent use.
type Store struct {
	mu      sync.RWMutex
	data    map[string]Versioned
	version uint64
}

// New returns an empty store.
func New() *Store {
	return &Store{data: make(map[string]Versioned)}
}

// Get returns the value and version for key, and whether it exists.
func (s *Store) Get(key string) ([]byte, uint64, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.data[key]
	if !ok {
		return nil, 0, false
	}
	out := make([]byte, len(v.Value))
	copy(out, v.Value)
	return out, v.Version, true
}

// Put stores value under key and returns the new version.
func (s *Store) Put(key string, value []byte) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.version++
	v := make([]byte, len(value))
	copy(v, value)
	s.data[key] = Versioned{Value: v, Version: s.version}
	return s.version
}

// CompareAndPut stores value only if the current version of key equals
// expect (0 means "key absent"). It reports whether the write happened and
// returns the resulting (or current) version.
func (s *Store) CompareAndPut(key string, value []byte, expect uint64) (uint64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur, ok := s.data[key]
	curVersion := uint64(0)
	if ok {
		curVersion = cur.Version
	}
	if curVersion != expect {
		return curVersion, false
	}
	s.version++
	v := make([]byte, len(value))
	copy(v, value)
	s.data[key] = Versioned{Value: v, Version: s.version}
	return s.version, true
}

// Delete removes key, reporting whether it existed.
func (s *Store) Delete(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.data[key]; !ok {
		return false
	}
	delete(s.data, key)
	s.version++
	return true
}

// Version returns the key's current version, 0 if absent.
func (s *Store) Version(key string) uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.data[key].Version
}

// Keys returns all keys in sorted order.
func (s *Store) Keys() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	keys := make([]string, 0, len(s.data))
	for k := range s.data {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Len returns the number of keys.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.data)
}

// Snapshot returns a deep copy of the store contents, used as a
// before-image set for rollback.
func (s *Store) Snapshot() map[string]Versioned {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string]Versioned, len(s.data))
	for k, v := range s.data {
		val := make([]byte, len(v.Value))
		copy(val, v.Value)
		out[k] = Versioned{Value: val, Version: v.Version}
	}
	return out
}

// Restore replaces the store contents with a snapshot.
func (s *Store) Restore(snap map[string]Versioned) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.data = make(map[string]Versioned, len(snap))
	maxV := s.version
	for k, v := range snap {
		val := make([]byte, len(v.Value))
		copy(val, v.Value)
		s.data[k] = Versioned{Value: val, Version: v.Version}
		if v.Version > maxV {
			maxV = v.Version
		}
	}
	s.version = maxV
}
