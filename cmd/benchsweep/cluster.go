package main

// The cluster sweep measures the horizontally sharded activity service
// end to end: it re-execs this binary as N member processes (each an
// ORB + core service + sharded activity factory joined to a shard-map
// authority hosted by the parent), then drives begin/complete pairs
// through the client-side shard router and reports throughput and
// latency percentiles per fleet size. A final segment drains one member
// mid-run and asserts that every admitted begin still completed — the
// zero-lost-activities contract of live resharding.

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/extendedtx/activityservice"
	"github.com/extendedtx/activityservice/orb"
)

// Environment protocol between the parent sweep and member children.
const (
	clusterMemberEnv    = "BENCHSWEEP_CLUSTER_MEMBER"
	clusterAuthorityEnv = "BENCHSWEEP_CLUSTER_AUTHORITY"
)

// clusterWorkers is the client-side concurrency driving each fleet.
const clusterWorkers = 16

// maxClusterMembers caps the member-count axis (flag -members): the CI
// smoke run keeps it small, the committed baseline sweeps to 8.
var maxClusterMembers int

// maybeClusterMember turns this process into one fleet member when the
// sweep's re-exec environment is set. It never returns in that case.
func maybeClusterMember() {
	id := os.Getenv(clusterMemberEnv)
	if id == "" {
		return
	}
	if err := clusterMemberMain(id, os.Getenv(clusterAuthorityEnv)); err != nil {
		fmt.Fprintln(os.Stderr, "benchsweep member:", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// clusterMemberMain is one member process: serve a sharded activity
// factory until stdin closes. Protocol on the pipes, one line each:
//
//	child  -> parent: ENDPOINT tcp:127.0.0.1:PORT
//	parent -> child:  ADDED            (the member is in the map now)
//	child  -> parent: READY            (synced; begins will be admitted)
//	parent closes stdin               (serve done; exit)
func clusterMemberMain(id, authority string) error {
	if authority == "" {
		return errors.New("no authority endpoint in environment")
	}
	node := orb.New()
	defer node.Shutdown()
	endpoint, err := node.Listen("127.0.0.1:0")
	if err != nil {
		return err
	}
	svc := activityservice.New()
	member := orb.NewShardMember(node, id, orb.ShardMapAt(authority), orb.WithOnDrain(svc.Drain))
	defer member.Stop()
	orb.ServeActivityFactory(node, svc, orb.WithFactoryShard(member))

	fmt.Printf("ENDPOINT %s\n", endpoint)
	in := bufio.NewScanner(os.Stdin)
	if !in.Scan() || in.Text() != "ADDED" {
		return fmt.Errorf("handshake: want ADDED, got %q (err %v)", in.Text(), in.Err())
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	err = member.Sync(ctx)
	cancel()
	if err != nil {
		return fmt.Errorf("map sync: %w", err)
	}
	go member.Run()
	fmt.Println("READY")

	for in.Scan() {
		// Ignore further lines; EOF means shut down.
	}
	if svc.Draining() {
		// A drained member finishes its in-flight activities before
		// leaving the fleet.
		qctx, qcancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer qcancel()
		if err := svc.WaitQuiesced(qctx); err != nil {
			return fmt.Errorf("drain quiesce: %w", err)
		}
	}
	return nil
}

// clusterChild is the parent-side handle of one member process.
type clusterChild struct {
	id       string
	cmd      *exec.Cmd
	stdin    io.WriteCloser
	out      *bufio.Reader
	endpoint string
}

// startClusterChild re-execs this binary as member id and completes the
// spawn half of the handshake (through ENDPOINT).
func startClusterChild(id, authority string) (*clusterChild, error) {
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(),
		clusterMemberEnv+"="+id,
		clusterAuthorityEnv+"="+authority,
	)
	cmd.Stderr = os.Stderr
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	c := &clusterChild{id: id, cmd: cmd, stdin: stdin, out: bufio.NewReader(stdout)}
	line, err := c.readLine()
	if err != nil {
		c.kill()
		return nil, fmt.Errorf("member %s: %w", id, err)
	}
	ep, ok := strings.CutPrefix(line, "ENDPOINT ")
	if !ok {
		c.kill()
		return nil, fmt.Errorf("member %s: want ENDPOINT, got %q", id, line)
	}
	c.endpoint = ep
	return c, nil
}

// confirmJoin completes the handshake after the parent added the member
// to the map.
func (c *clusterChild) confirmJoin() error {
	if _, err := fmt.Fprintln(c.stdin, "ADDED"); err != nil {
		return fmt.Errorf("member %s: %w", c.id, err)
	}
	line, err := c.readLine()
	if err != nil {
		return fmt.Errorf("member %s: %w", c.id, err)
	}
	if line != "READY" {
		return fmt.Errorf("member %s: want READY, got %q", c.id, line)
	}
	return nil
}

func (c *clusterChild) readLine() (string, error) {
	line, err := c.out.ReadString('\n')
	if err != nil {
		return "", fmt.Errorf("read child: %w", err)
	}
	return strings.TrimSuffix(line, "\n"), nil
}

// shutdown closes the child's stdin (its serve-until-EOF signal) and
// waits for a clean exit.
func (c *clusterChild) shutdown() error {
	c.stdin.Close()
	done := make(chan error, 1)
	go func() { done <- c.cmd.Wait() }()
	select {
	case err := <-done:
		return err
	case <-time.After(60 * time.Second):
		c.kill()
		return fmt.Errorf("member %s: shutdown timeout", c.id)
	}
}

func (c *clusterChild) kill() {
	_ = c.cmd.Process.Kill()
	_, _ = c.cmd.Process.Wait()
}

// clusterFleet is a running fleet: the authority host plus its members.
type clusterFleet struct {
	node     *orb.ORB
	auth     *orb.ShardAuthority
	authRef  orb.IOR
	endpoint string
	children []*clusterChild
}

// startClusterFleet hosts a shard-map authority and joins n member
// processes to it.
func startClusterFleet(n int) (*clusterFleet, error) {
	node := orb.New()
	endpoint, err := node.Listen("127.0.0.1:0")
	if err != nil {
		node.Shutdown()
		return nil, err
	}
	auth := orb.NewShardAuthority(nil)
	orb.ServeShardMap(node, auth)
	f := &clusterFleet{node: node, auth: auth, endpoint: endpoint}
	f.authRef, _ = node.IOR(orb.ShardMapKey)

	for i := 0; i < n; i++ {
		id := fmt.Sprintf("member-%d", i)
		c, err := startClusterChild(id, endpoint)
		if err != nil {
			f.stop()
			return nil, err
		}
		f.children = append(f.children, c)
		if _, err := auth.Add(orb.ClusterMember{ID: id, Endpoints: []string{c.endpoint}, Weight: 1}); err != nil {
			f.stop()
			return nil, err
		}
		if err := c.confirmJoin(); err != nil {
			f.stop()
			return nil, err
		}
	}
	return f, nil
}

// stop tears the fleet down; the first child error wins.
func (f *clusterFleet) stop() error {
	var firstErr error
	for _, c := range f.children {
		if err := c.shutdown(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	f.node.Shutdown()
	return firstErr
}

// driveCluster runs total begin/complete pairs through router from
// clusterWorkers goroutines and returns the sorted per-op latencies and
// the wall-clock elapsed. midRun, when non-nil, fires once near the
// halfway point (the drain segment injects the reshard there).
func driveCluster(router *orb.ShardRouter, total int, midRun func()) ([]time.Duration, time.Duration, error) {
	ctx := context.Background()
	latencies := make([]time.Duration, total)
	var next atomic.Int64
	var callErr atomic.Value
	var midOnce sync.Once
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < clusterWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(total) {
					return
				}
				if midRun != nil && i == int64(total/2) {
					midOnce.Do(midRun)
				}
				opStart := time.Now()
				proxy, err := router.BeginActivity(ctx, fmt.Sprintf("cluster-op-%d", i))
				if err == nil {
					_, err = proxy.Complete(ctx, activityservice.CompletionSuccess)
				}
				latencies[i] = time.Since(opStart)
				if err != nil {
					callErr.Store(fmt.Errorf("op %d: %w", i, err))
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err, ok := callErr.Load().(error); ok {
		return nil, 0, err
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	return latencies, elapsed, nil
}

// sweepCluster is the multi-process sharded-fleet sweep: throughput and
// latency vs member count, then the drain-mid-run segment.
func sweepCluster(iters int) error {
	counts := []int{1, 2, 4, 8}
	max := maxClusterMembers
	if max <= 0 {
		max = 8
	}
	for len(counts) > 1 && counts[len(counts)-1] > max {
		counts = counts[:len(counts)-1]
	}
	total := iters * 2

	fmt.Printf("\n== cluster: sharded begin+complete across member processes (%d client workers) ==\n", clusterWorkers)
	fmt.Printf("%-10s %12s %12s %12s %12s\n", "members", "ops/sec", "p50", "p99", "redirects")
	for _, n := range counts {
		fleet, err := startClusterFleet(n)
		if err != nil {
			return err
		}
		client := orb.New(orb.WithPoolSize(4))
		router := orb.NewShardRouter(client, fleet.authRef)
		latencies, elapsed, err := driveCluster(router, total, nil)
		client.Shutdown()
		if err != nil {
			fleet.stop()
			return err
		}
		if err := fleet.stop(); err != nil {
			return err
		}
		opsPerSec := float64(total) / elapsed.Seconds()
		p50 := latencies[total/2]
		p99 := latencies[total*99/100]
		st := router.Stats()
		config := fmt.Sprintf("members=%d", n)
		record("cluster", config, "ops-per-sec", opsPerSec)
		record("cluster", config, "p50-ns", float64(p50.Nanoseconds()))
		record("cluster", config, "p99-ns", float64(p99.Nanoseconds()))
		fmt.Printf("%-10d %12.0f %12s %12s %12d\n",
			n, opsPerSec, p50.Round(time.Microsecond), p99.Round(time.Microsecond), st.Redirects)
	}

	// Drain segment: drain one member mid-run; every begin the fleet
	// admitted must still complete (the router heals new begins over to
	// the survivors, the drained member finishes what it has).
	n := counts[len(counts)-1]
	if n < 2 {
		fmt.Println("cluster: skipping drain segment (needs >= 2 members)")
		return nil
	}
	fleet, err := startClusterFleet(n)
	if err != nil {
		return err
	}
	client := orb.New(orb.WithPoolSize(4))
	router := orb.NewShardRouter(client, fleet.authRef)
	drained := fleet.children[0].id
	latencies, elapsed, err := driveCluster(router, total, func() {
		if _, derr := fleet.auth.Drain(drained); derr != nil {
			panic(fmt.Sprintf("drain %s: %v", drained, derr))
		}
	})
	client.Shutdown()
	if err != nil {
		fleet.stop()
		return fmt.Errorf("drain segment lost an operation: %w", err)
	}
	if err := fleet.stop(); err != nil {
		return fmt.Errorf("drain segment: %w", err)
	}
	config := fmt.Sprintf("drain-mid-run/members=%d", n)
	record("cluster", config, "ops-lost", 0)
	record("cluster", config, "ops-per-sec", float64(total)/elapsed.Seconds())
	record("cluster", config, "p99-ns", float64(latencies[total*99/100].Nanoseconds()))
	fmt.Printf("drain-mid-run: %d/%d ops completed after draining %s (0 lost), p99 %s\n",
		total, total, drained, latencies[total*99/100].Round(time.Microsecond))
	return nil
}
