// Command benchsweep runs the parameter sweeps behind EXPERIMENTS.md and
// prints them as aligned tables: two-phase commit latency vs participant
// count (fig. 8 protocol, framework vs raw OTS baseline), signal fan-out
// (fig. 5), workflow chain length (fig. 1), delivery guarantees (§3.4) and
// local vs networked participants.
//
// Usage:
//
//	benchsweep                 # all sweeps, default iteration count
//	benchsweep -iters 2000
//	benchsweep -sweep 2pc      # one sweep: 2pc | fanout | chain | delivery |
//	                           #            remote | remotefanout | overload |
//	                           #            failover | wire | tree
//	benchsweep -sweep remotefanout -pool 8   # pin the client pool size
//	benchsweep -sweep overload               # admission control at saturation:
//	                                         # p50/p99/shed vs -max-inflight
//	benchsweep -sweep failover               # multi-profile selector cost:
//	                                         # single vs multi-profile refs,
//	                                         # healthy vs downed primary
//	benchsweep -sweep wire                   # raw request/reply wire path:
//	                                         # RTT + allocs/op, small and 4KB
//	                                         # bodies, 1 and 64 callers
//	benchsweep -sweep tree                   # relay-tree vs flat fan-out:
//	                                         # coordinator bytes/round and
//	                                         # p50/p99 at fanout 64-4096
//	benchsweep -json BENCH_BASELINE.json     # also dump every data point as
//	                                         # JSON (the committed perf
//	                                         # baseline future PRs diff)
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/extendedtx/activityservice"
	"github.com/extendedtx/activityservice/hls/twopc"
	"github.com/extendedtx/activityservice/hls/workflow"
	"github.com/extendedtx/activityservice/internal/cdr"
	"github.com/extendedtx/activityservice/orb"
	"github.com/extendedtx/activityservice/ots"
)

// poolSize pins the client connection pool size for the remote sweeps;
// 0 lets each sweep use its own defaults (remotefanout sweeps 1, 4, 16).
var poolSize int

// benchResult is one sweep data point, the unit of the -json dump.
type benchResult struct {
	Sweep  string  `json:"sweep"`
	Config string  `json:"config"`
	Metric string  `json:"metric"`
	Value  float64 `json:"value"`
}

// baseline is the -json document: enough metadata to judge whether two
// dumps are comparable, then the flat result list.
type baseline struct {
	Iters   int           `json:"iters"`
	MaxProc int           `json:"gomaxprocs"`
	Results []benchResult `json:"results"`
}

// recorded accumulates data points when -json is set.
var recorded []benchResult

// record captures one data point for the -json dump (and is a no-op
// otherwise, so the table output stays the primary interface).
func record(sweep, config, metric string, v float64) {
	recorded = append(recorded, benchResult{Sweep: sweep, Config: config, Metric: metric, Value: v})
}

func main() {
	maybeClusterMember()
	iters := flag.Int("iters", 500, "iterations per data point")
	sweep := flag.String("sweep", "", "run one sweep (2pc|fanout|chain|delivery|remote|remotefanout|overload|failover|wire|tree|cluster); empty = all")
	jsonPath := flag.String("json", "", "also write every data point as JSON to this file (perf baseline)")
	flag.IntVar(&poolSize, "pool", 0, "client connection pool size for remote sweeps (0 = sweep defaults)")
	flag.IntVar(&maxClusterMembers, "members", 0, "cap the cluster sweep's member-process axis (0 = sweep to 8)")
	flag.Parse()
	if err := run(*iters, *sweep); err != nil {
		fmt.Fprintln(os.Stderr, "benchsweep:", err)
		os.Exit(1)
	}
	if *jsonPath != "" {
		doc := baseline{Iters: *iters, MaxProc: runtime.GOMAXPROCS(0), Results: recorded}
		blob, err := json.MarshalIndent(doc, "", "  ")
		if err == nil {
			err = os.WriteFile(*jsonPath, append(blob, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchsweep: write json:", err)
			os.Exit(1)
		}
	}
}

var sweeps = map[string]func(iters int) error{
	"2pc":          sweep2PC,
	"fanout":       sweepFanout,
	"chain":        sweepChain,
	"delivery":     sweepDelivery,
	"remote":       sweepRemote,
	"remotefanout": sweepRemoteFanout,
	"overload":     sweepOverload,
	"failover":     sweepFailover,
	"wire":         sweepWire,
	"tree":         sweepTree,
	"cluster":      sweepCluster,
}

func run(iters int, which string) error {
	if which != "" {
		fn, ok := sweeps[which]
		if !ok {
			return fmt.Errorf("unknown sweep %q", which)
		}
		return fn(iters)
	}
	names := make([]string, 0, len(sweeps))
	for n := range sweeps {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if err := sweeps[n](iters); err != nil {
			return fmt.Errorf("sweep %s: %w", n, err)
		}
	}
	return nil
}

// measure runs fn iters times and returns ns/op.
func measure(iters int, fn func() error) (float64, error) {
	// Warm up.
	for i := 0; i < iters/10+1; i++ {
		if err := fn(); err != nil {
			return 0, err
		}
	}
	start := time.Now()
	for i := 0; i < iters; i++ {
		if err := fn(); err != nil {
			return 0, err
		}
	}
	return float64(time.Since(start).Nanoseconds()) / float64(iters), nil
}

type okResource struct{}

func (okResource) Prepare() (ots.Vote, error) { return ots.VoteCommit, nil }
func (okResource) Commit() error              { return nil }
func (okResource) Rollback() error            { return nil }
func (okResource) CommitOnePhase() error      { return nil }
func (okResource) Forget() error              { return nil }

func noop() activityservice.Action {
	return activityservice.ActionFunc(
		func(context.Context, activityservice.Signal) (activityservice.Outcome, error) {
			return activityservice.Outcome{Name: "ok"}, nil
		})
}

func sweep2PC(iters int) error {
	fmt.Println("\n== two-phase commit: ns/op vs participants (fig. 8; baseline = raw OTS) ==")
	fmt.Printf("%-14s %14s %14s %10s\n", "participants", "activity-2pc", "raw-ots", "ratio")
	ctx := context.Background()
	for _, n := range []int{1, 2, 4, 8, 16, 32, 64, 128} {
		svc := activityservice.New()
		coord := twopc.NewCoordinator(svc)
		act, err := measure(iters, func() error {
			tx, err := coord.Begin("sweep")
			if err != nil {
				return err
			}
			for j := 0; j < n; j++ {
				if err := tx.Enlist(okResource{}); err != nil {
					return err
				}
			}
			_, err = tx.Commit(ctx)
			return err
		})
		if err != nil {
			return err
		}
		otsSvc := ots.NewService()
		raw, err := measure(iters, func() error {
			tx := otsSvc.Begin()
			for j := 0; j < n; j++ {
				if err := tx.RegisterResource(okResource{}); err != nil {
					return err
				}
			}
			return tx.Commit(false)
		})
		if err != nil {
			return err
		}
		record("2pc", fmt.Sprintf("participants=%d", n), "activity-ns/op", act)
		record("2pc", fmt.Sprintf("participants=%d", n), "raw-ots-ns/op", raw)
		fmt.Printf("%-14d %14.0f %14.0f %9.2fx\n", n, act, raw, act/raw)
	}
	return nil
}

func sweepFanout(iters int) error {
	fmt.Println("\n== signal fan-out: ns/op vs registered actions (fig. 5) ==")
	fmt.Printf("%-10s %14s %16s\n", "actions", "ns/op", "ns/action")
	ctx := context.Background()
	for _, n := range []int{1, 2, 4, 8, 16, 32, 64, 128, 256} {
		svc := activityservice.New()
		ns, err := measure(iters, func() error {
			a := svc.Begin("fanout")
			set := activityservice.NewSequenceSet("s", "ping")
			if err := a.RegisterSignalSet(set); err != nil {
				return err
			}
			for j := 0; j < n; j++ {
				if _, err := a.AddAction("s", noop()); err != nil {
					return err
				}
			}
			if _, err := a.Signal(ctx, "s"); err != nil {
				return err
			}
			_, err := a.Complete(ctx)
			return err
		})
		if err != nil {
			return err
		}
		record("fanout", fmt.Sprintf("actions=%d", n), "ns/op", ns)
		fmt.Printf("%-10d %14.0f %16.1f\n", n, ns, ns/float64(n))
	}
	return nil
}

func sweepChain(iters int) error {
	fmt.Println("\n== long-running chain: ns/op vs steps (fig. 1) ==")
	fmt.Printf("%-10s %14s %14s\n", "steps", "ns/op", "ns/step")
	ctx := context.Background()
	ok := func(context.Context) error { return nil }
	for _, n := range []int{1, 2, 4, 8, 16} {
		svc := activityservice.New()
		engine := workflow.New(svc)
		var tasks []workflow.Task
		for i := 0; i < n; i++ {
			t := workflow.Task{Name: fmt.Sprintf("t%d", i+1), Run: ok}
			if i > 0 {
				t.DependsOn = []string{fmt.Sprintf("t%d", i)}
			}
			tasks = append(tasks, t)
		}
		p := workflow.Process{Name: "chain", Tasks: tasks}
		ns, err := measure(iters/5+1, func() error {
			_, err := engine.Execute(ctx, p)
			return err
		})
		if err != nil {
			return err
		}
		record("chain", fmt.Sprintf("steps=%d", n), "ns/op", ns)
		fmt.Printf("%-10d %14.0f %14.1f\n", n, ns, ns/float64(n))
	}
	return nil
}

func sweepDelivery(iters int) error {
	fmt.Println("\n== delivery guarantees: ns per protocol run (§3.4) ==")
	fmt.Printf("%-20s %14s\n", "guarantee", "ns/op")
	ctx := context.Background()
	txsvc := ots.NewService()
	for _, mode := range []struct {
		name string
		wrap func(activityservice.Action) activityservice.Action
	}{
		{"at-least-once", func(a activityservice.Action) activityservice.Action { return a }},
		{"idempotent-dedup", activityservice.Idempotent},
		{"exactly-once-tx", func(a activityservice.Action) activityservice.Action {
			return activityservice.ExactlyOnce(txsvc, a)
		}},
	} {
		svc := activityservice.New()
		ns, err := measure(iters, func() error {
			a := svc.Begin("sweep")
			set := activityservice.NewSequenceSet("s", "apply")
			if err := a.RegisterSignalSet(set); err != nil {
				return err
			}
			if _, err := a.AddAction("s", mode.wrap(noop())); err != nil {
				return err
			}
			if _, err := a.Signal(ctx, "s"); err != nil {
				return err
			}
			_, err := a.Complete(ctx)
			return err
		})
		if err != nil {
			return err
		}
		record("delivery", mode.name, "ns/op", ns)
		fmt.Printf("%-20s %14.0f\n", mode.name, ns)
	}
	return nil
}

func sweepRemote(iters int) error {
	fmt.Println("\n== distribution: 2PC ns/op with 2 participants (fig. 8 over the ORB) ==")
	fmt.Printf("%-10s %14s\n", "transport", "ns/op")
	ctx := context.Background()
	for _, tcp := range []bool{false, true} {
		serverORB := orb.New()
		clientORB := orb.New(clientPoolOptions()...)
		refs := make([]orb.IOR, 2)
		for i := range refs {
			refs[i] = orb.ExportAction(serverORB, twopc.NewResourceAction(okResource{}))
		}
		if tcp {
			if _, err := serverORB.Listen("127.0.0.1:0"); err != nil {
				return err
			}
			for i := range refs {
				refs[i], _ = serverORB.IOR(refs[i].Key)
			}
		}
		svc := activityservice.New()
		coord := twopc.NewCoordinator(svc)
		n := iters
		if tcp {
			n = iters / 10 // network round trips are slow; keep runtime sane
		}
		ns, err := measure(n+1, func() error {
			tx, err := coord.Begin("sweep")
			if err != nil {
				return err
			}
			for _, ref := range refs {
				if err := tx.EnlistAction(orb.ImportAction(clientORB, ref)); err != nil {
					return err
				}
			}
			_, err = tx.Commit(ctx)
			return err
		})
		serverORB.Shutdown()
		clientORB.Shutdown()
		if err != nil {
			return err
		}
		name := "inproc"
		if tcp {
			name = "tcp"
		}
		record("remote", name, "ns/op", ns)
		fmt.Printf("%-10s %14.0f\n", name, ns)
	}
	return nil
}

// clientPoolOptions applies the -pool knob to a client ORB.
func clientPoolOptions() []orb.ORBOption {
	if poolSize > 0 {
		return []orb.ORBOption{orb.WithPoolSize(poolSize)}
	}
	return nil
}

// sweepRemoteFanout measures the distributed fig. 5 broadcast: one signal
// fanned out over TCP to remote actions that each work for 100µs, serial
// vs parallel delivery, across client pool sizes. The per-action latency
// models a real participant; it is what makes the broadcast latency-bound,
// the regime parallel delivery through the pooled transport targets.
func sweepRemoteFanout(iters int) error {
	slow := func() activityservice.Action {
		return activityservice.ActionFunc(
			func(context.Context, activityservice.Signal) (activityservice.Outcome, error) {
				time.Sleep(100 * time.Microsecond)
				return activityservice.Outcome{Name: "ok"}, nil
			})
	}
	fmt.Println("\n== remote fan-out: ns/op vs pool size, serial vs parallel (fig. 5 over the ORB, 100µs actions) ==")
	fmt.Printf("%-10s %-8s %14s %14s %10s\n", "fanout", "pool", "serial", "parallel", "speedup")
	ctx := context.Background()
	pools := []int{1, 4, 16}
	if poolSize > 0 {
		pools = []int{poolSize}
	}
	for _, fanout := range []int{8, 64} {
		for _, pool := range pools {
			var results [2]float64
			for pi, policy := range []activityservice.DeliveryPolicy{
				{Mode: activityservice.DeliverSerial},
				activityservice.Parallel(),
			} {
				serverORB := orb.New()
				if _, err := serverORB.Listen("127.0.0.1:0"); err != nil {
					return err
				}
				clientORB := orb.New(orb.WithPoolSize(pool))
				actions := make([]activityservice.Action, fanout)
				for i := range actions {
					ref := orb.ExportAction(serverORB, slow())
					ref, _ = serverORB.IOR(ref.Key)
					actions[i] = orb.ImportAction(clientORB, ref)
				}
				svc := activityservice.New(activityservice.WithDelivery(policy))
				n := iters/fanout + 5 // network fan-out is slow; keep runtime sane
				ns, err := measure(n, func() error {
					a := svc.Begin("remote-fanout")
					set := activityservice.NewSequenceSet("s", "ping")
					if err := a.RegisterSignalSet(set); err != nil {
						return err
					}
					for _, action := range actions {
						if _, err := a.AddAction("s", action); err != nil {
							return err
						}
					}
					if _, err := a.Signal(ctx, "s"); err != nil {
						return err
					}
					_, err := a.Complete(ctx)
					return err
				})
				serverORB.Shutdown()
				clientORB.Shutdown()
				if err != nil {
					return err
				}
				results[pi] = ns
			}
			cfg := fmt.Sprintf("fanout=%d/pool=%d", fanout, pool)
			record("remotefanout", cfg, "serial-ns/op", results[0])
			record("remotefanout", cfg, "parallel-ns/op", results[1])
			fmt.Printf("%-10d %-8d %14.0f %14.0f %9.2fx\n",
				fanout, pool, results[0], results[1], results[0]/results[1])
		}
	}
	return nil
}

// countingTransport wraps a Transport and counts every byte the client
// writes, so a sweep can report the coordinator's outbound traffic.
type countingTransport struct {
	base  orb.Transport
	bytes *atomic.Int64
}

// Dial implements orb.Transport.
func (t countingTransport) Dial(ctx context.Context, addr string) (orb.Conn, error) {
	c, err := t.base.Dial(ctx, addr)
	if err != nil {
		return nil, err
	}
	return countingConn{Conn: c, bytes: t.bytes}, nil
}

// countingConn counts outbound frame bytes.
type countingConn struct {
	orb.Conn
	bytes *atomic.Int64
}

// WriteFrame implements orb.Conn.
func (c countingConn) WriteFrame(p []byte) error {
	c.bytes.Add(int64(len(p)))
	return c.Conn.WriteFrame(p)
}

// sweepTree compares flat parallel fan-out with relay-tree fan-out
// (DeliverTree) over TCP: participants spread across a fixed set of site
// ORBs, each site hosting the well-known relay servant. Per fanout it
// reports the coordinator's outbound bytes per broadcast round and the
// round latency distribution. Flat delivery writes one frame per
// participant, so its bytes grow linearly with fanout; tree delivery
// contacts only the subtree roots, and after the first round each root
// batch is a constant-size plant-id reference, so coordinator bytes stay
// O(branching) — the sub-linear curve BENCH_BASELINE.json pins.
func sweepTree(iters int) error {
	const (
		sites     = 8
		branching = 8
	)
	fmt.Println("\n== relay tree vs flat: coordinator bytes/round and latency (8 sites, branching 8) ==")
	fmt.Printf("%-10s %-8s %16s %12s %12s\n", "fanout", "mode", "bytes/round", "p50", "p99")
	ctx := context.Background()

	rounds := iters / 25
	if rounds < 8 {
		rounds = 8
	}
	for _, fanout := range []int{64, 256, 1024, 4096} {
		// The site ORBs host the participants and one relay servant each.
		siteORBs := make([]*orb.ORB, sites)
		for i := range siteORBs {
			siteORBs[i] = orb.New()
			if _, err := siteORBs[i].Listen("127.0.0.1:0"); err != nil {
				return err
			}
			orb.ServeRelay(siteORBs[i])
		}
		refs := make([]orb.IOR, fanout)
		for i := range refs {
			site := siteORBs[i%sites]
			ref := orb.ExportAction(site, noop())
			ref, _ = site.IOR(ref.Key)
			refs[i] = ref
		}

		for _, mode := range []struct {
			name   string
			policy activityservice.DeliveryPolicy
		}{
			{"flat", activityservice.Parallel()},
			{"tree", activityservice.Tree(branching)},
		} {
			var sent atomic.Int64
			client := orb.New(orb.WithTransport(countingTransport{base: orb.TCPTransport{}, bytes: &sent}))
			actions := make([]activityservice.Action, fanout)
			for i, ref := range refs {
				actions[i] = orb.ImportAction(client, ref)
			}
			svc := activityservice.New(activityservice.WithDelivery(mode.policy))
			round := func() error {
				a := svc.Begin("tree-sweep")
				set := activityservice.NewSequenceSet("s", "ping")
				if err := a.RegisterSignalSet(set); err != nil {
					return err
				}
				for _, action := range actions {
					if _, err := a.AddAction("s", action); err != nil {
						return err
					}
				}
				if _, err := a.Signal(ctx, "s"); err != nil {
					return err
				}
				_, err := a.Complete(ctx)
				return err
			}
			// Warm-up rounds: connections dialed, RTTs seeded, memberships
			// planted. Steady state is what the sweep prices.
			var err error
			for i := 0; i < 2 && err == nil; i++ {
				err = round()
			}
			if err != nil {
				client.Shutdown()
				for _, site := range siteORBs {
					site.Shutdown()
				}
				return err
			}
			sent.Store(0)
			latencies := make([]time.Duration, rounds)
			for i := 0; i < rounds && err == nil; i++ {
				start := time.Now()
				err = round()
				latencies[i] = time.Since(start)
			}
			bytesPerRound := float64(sent.Load()) / float64(rounds)
			client.Shutdown()
			if err != nil {
				for _, site := range siteORBs {
					site.Shutdown()
				}
				return err
			}
			sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
			p50 := latencies[rounds/2]
			p99 := latencies[rounds*99/100]
			cfg := fmt.Sprintf("fanout=%d", fanout)
			record("tree", cfg, mode.name+"-bytes/round", bytesPerRound)
			record("tree", cfg, mode.name+"-p50-ns", float64(p50.Nanoseconds()))
			record("tree", cfg, mode.name+"-p99-ns", float64(p99.Nanoseconds()))
			fmt.Printf("%-10d %-8s %16.0f %12s %12s\n",
				fanout, mode.name, bytesPerRound, p50.Round(time.Microsecond), p99.Round(time.Microsecond))
		}
		for _, site := range siteORBs {
			site.Shutdown()
		}
	}
	return nil
}

// sweepOverload measures the admission controller at saturation: a fixed
// fan-in of closed-loop callers against a slow servant, across dispatch
// bounds. Per bound it reports client-observed p50 and p99 (successes and
// sheds both count — a shed is a real, fast answer) plus the shed rate and
// the peak goroutine count, showing what the bound buys: flat tails and a
// flat goroutine profile for the price of explicit rejections.
func sweepOverload(iters int) error {
	const (
		fanIn       = 64
		servantWork = 200 * time.Microsecond
	)
	fmt.Println("\n== overload: admission control at saturation (64 callers, 200µs servant) ==")
	fmt.Printf("%-14s %12s %12s %10s %16s\n", "max-inflight", "p50", "p99", "shed", "peak-goroutines")
	for _, limit := range []int{0, 4, 8, 16, 32} {
		var opts []orb.ORBOption
		if limit > 0 {
			opts = append(opts,
				orb.WithMaxInflight(limit),
				orb.WithAdmissionQueue(limit, 5*time.Millisecond),
			)
		}
		node := orb.New(opts...)
		ref := node.RegisterServant("IDL:sweep/Slow:1.0", orb.ServantFunc(
			func(ctx context.Context, op string, _ *cdr.Decoder) ([]byte, error) {
				select {
				case <-time.After(servantWork):
				case <-ctx.Done():
				}
				return nil, nil
			}))
		if _, err := node.Listen("127.0.0.1:0"); err != nil {
			node.Shutdown()
			return err
		}
		ref, _ = node.IOR(ref.Key)
		client := orb.New(orb.WithPoolSize(8), orb.WithCallTimeout(10*time.Second))

		total := iters * 4
		latencies := make([]time.Duration, total)
		var next, shed, peak atomic.Int64
		stop := make(chan struct{})
		watched := make(chan struct{})
		go func() {
			defer close(watched)
			for {
				select {
				case <-stop:
					return
				case <-time.After(time.Millisecond):
				}
				if g := int64(runtime.NumGoroutine()); g > peak.Load() {
					peak.Store(g)
				}
			}
		}()
		var wg sync.WaitGroup
		var callErr atomic.Value
		for w := 0; w < fanIn; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				ctx := context.Background()
				for {
					i := next.Add(1) - 1
					if i >= int64(total) {
						return
					}
					start := time.Now()
					_, err := client.Invoke(ctx, ref, "work", nil)
					latencies[i] = time.Since(start)
					if err != nil {
						if !orb.IsSystem(err, orb.CodeTransient) {
							callErr.Store(err)
							return
						}
						shed.Add(1)
					}
				}
			}()
		}
		wg.Wait()
		close(stop)
		<-watched
		client.Shutdown()
		node.Shutdown()
		if err, ok := callErr.Load().(error); ok {
			return err
		}

		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		p50 := latencies[total/2]
		p99 := latencies[total*99/100]
		name := "unbounded"
		if limit > 0 {
			name = fmt.Sprintf("%d", limit)
		}
		record("overload", "max-inflight="+name, "p50-ns", float64(p50.Nanoseconds()))
		record("overload", "max-inflight="+name, "p99-ns", float64(p99.Nanoseconds()))
		record("overload", "max-inflight="+name, "shed-pct", float64(shed.Load())/float64(total)*100)
		record("overload", "max-inflight="+name, "peak-goroutines", float64(peak.Load()))
		fmt.Printf("%-14s %12s %12s %9.1f%% %16d\n",
			name, p50.Round(time.Microsecond), p99.Round(time.Microsecond),
			float64(shed.Load())/float64(total)*100, peak.Load())
	}
	return nil
}

// sweepFailover prices the multi-profile endpoint selector: a no-op echo
// invocation through a single-profile reference (the PR-3-era invoke
// path), through a two-profile reference with a healthy primary (the full
// selector: affinity, shared health verdicts, ranking), and through a
// two-profile reference whose primary is down (the post-failover steady
// state: the shared verdict routes every call straight to the backup). A
// "first-failover" row reports the one-off cost of the invoke that
// discovers the dead primary and rides over to the backup mid-call.
func sweepFailover(iters int) error {
	fmt.Println("\n== failover: multi-profile selector cost (no-op servant) ==")
	fmt.Printf("%-26s %14s\n", "reference", "ns/op")
	ctx := context.Background()

	startNode := func() (*orb.ORB, string, error) {
		node := orb.New()
		node.RegisterServantWithKey("obj", "IDL:sweep/Echo:1.0", orb.ServantFunc(
			func(context.Context, string, *cdr.Decoder) ([]byte, error) {
				return nil, nil
			}))
		ep, err := node.Listen("127.0.0.1:0")
		return node, ep, err
	}
	deadEndpoint := func() (string, error) {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return "", err
		}
		addr := ln.Addr().String()
		ln.Close()
		return "tcp:" + addr, nil
	}
	newClient := func() *orb.ORB {
		return orb.New(
			orb.WithHealthRegistry(orb.NewHealthRegistry()),
			orb.WithReconnectBackoff(time.Minute, time.Minute),
		)
	}
	steady := func(name string, endpoints ...string) error {
		client := newClient()
		defer client.Shutdown()
		ref := orb.NewIOR("IDL:sweep/Echo:1.0", "obj", endpoints...)
		ns, err := measure(iters, func() error {
			_, err := client.Invoke(ctx, ref, "ping", nil)
			return err
		})
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		record("failover", name, "ns/op", ns)
		fmt.Printf("%-26s %14.0f\n", name, ns)
		return nil
	}

	primary, ep1, err := startNode()
	if err != nil {
		return err
	}
	defer primary.Shutdown()
	backup, ep2, err := startNode()
	if err != nil {
		return err
	}
	defer backup.Shutdown()
	dead, err := deadEndpoint()
	if err != nil {
		return err
	}

	if err := steady("single-profile", ep1); err != nil {
		return err
	}
	if err := steady("two-profile steady", ep1, ep2); err != nil {
		return err
	}
	if err := steady("two-profile primary-down", dead, ep2); err != nil {
		return err
	}

	// The one-off discovery cost: a fresh client per iteration, so every
	// invoke pays the dead dial plus the mid-call ride to the backup.
	n := iters / 50
	if n < 10 {
		n = 10
	}
	ref := orb.NewIOR("IDL:sweep/Echo:1.0", "obj", dead, ep2)
	ns, err := measure(n, func() error {
		client := newClient()
		defer client.Shutdown()
		_, err := client.Invoke(ctx, ref, "ping", nil)
		return err
	})
	if err != nil {
		return fmt.Errorf("first-failover: %w", err)
	}
	record("failover", "first-failover-cold", "ns/op", ns)
	fmt.Printf("%-26s %14.0f\n", "first-failover (cold)", ns)
	return nil
}

// sweepWire measures the raw GLOP request/reply wire path the PR-5
// rebuild targets: a no-op echo servant behind the TCP transport, small
// and 4KB bodies, one caller (the latency view) and 64 concurrent
// callers on one pooled connection (the write-coalescing view). Besides
// ns/op it reports allocs/op measured with runtime.MemStats across the
// timed loop — the steady-state allocation budget BENCH_BASELINE.json
// pins for future PRs.
func sweepWire(iters int) error {
	fmt.Println("\n== wire path: echo RTT and allocs/op (pooled codecs + coalesced writes) ==")
	fmt.Printf("%-24s %14s %14s\n", "config", "ns/op", "allocs/op")
	ctx := context.Background()
	for _, size := range []int{0, 4096} {
		payload := make([]byte, size)
		body := func() []byte {
			e := cdr.NewEncoder(16 + size)
			e.WriteBytes(payload)
			return e.Bytes()
		}()
		for _, callers := range []int{1, 64} {
			node := orb.New(orb.WithHealthRegistry(orb.NewHealthRegistry()))
			ref := node.RegisterServant("IDL:sweep/Echo:1.0", orb.ServantFunc(
				func(_ context.Context, _ string, in *cdr.Decoder) ([]byte, error) {
					return in.ReadBytes(), nil
				}))
			if _, err := node.Listen("127.0.0.1:0"); err != nil {
				return err
			}
			ref, _ = node.IOR(ref.Key)
			client := orb.New(orb.WithHealthRegistry(orb.NewHealthRegistry()), orb.WithPoolSize(1))
			if _, err := client.Invoke(ctx, ref, "echo", body); err != nil {
				client.Shutdown()
				node.Shutdown()
				return err
			}

			total := iters * 4
			var ms0, ms1 runtime.MemStats
			start := time.Now()
			runtime.ReadMemStats(&ms0)
			var next atomic.Int64
			var callErr atomic.Value
			var wg sync.WaitGroup
			for wkr := 0; wkr < callers; wkr++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						if next.Add(1) > int64(total) {
							return
						}
						if _, err := client.Invoke(ctx, ref, "echo", body); err != nil {
							callErr.Store(err)
							return
						}
					}
				}()
			}
			wg.Wait()
			runtime.ReadMemStats(&ms1)
			elapsed := time.Since(start)
			client.Shutdown()
			node.Shutdown()
			if err, ok := callErr.Load().(error); ok {
				return err
			}
			ns := float64(elapsed.Nanoseconds()) / float64(total)
			allocs := float64(ms1.Mallocs-ms0.Mallocs) / float64(total)
			cfg := fmt.Sprintf("body=%d/callers=%d", size, callers)
			record("wire", cfg, "ns/op", ns)
			record("wire", cfg, "allocs/op", allocs)
			fmt.Printf("%-24s %14.0f %14.1f\n", cfg, ns, allocs)
		}
	}
	return nil
}
