package main

import "testing"

// TestDaemonDemoRoundTrip boots the daemon on an ephemeral port and runs
// the built-in client against it: factory resolution through naming,
// remote activity creation, remote enlistment and remote completion.
func TestDaemonDemoRoundTrip(t *testing.T) {
	if err := run("127.0.0.1:0", true, 0, false); err != nil {
		t.Fatal(err)
	}
}

// TestDaemonDemoPooledParallel runs the same round trip with a pooled
// client transport and parallel signal fan-out enabled.
func TestDaemonDemoPooledParallel(t *testing.T) {
	if err := run("127.0.0.1:0", true, 8, true); err != nil {
		t.Fatal(err)
	}
}
