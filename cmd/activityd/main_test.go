package main

import (
	"testing"
	"time"

	"github.com/extendedtx/activityservice"
)

// TestDaemonDemoRoundTrip boots the daemon on an ephemeral port and runs
// the built-in client against it: factory resolution through naming,
// remote activity creation, remote enlistment and remote completion.
func TestDaemonDemoRoundTrip(t *testing.T) {
	if err := run([]string{"127.0.0.1:0"}, true, orbConfig{}, activityservice.DeliveryPolicy{}, false, false); err != nil {
		t.Fatal(err)
	}
}

// TestDaemonDemoPooledParallel runs the same round trip with a pooled
// client transport and parallel signal fan-out enabled.
func TestDaemonDemoPooledParallel(t *testing.T) {
	if err := run([]string{"127.0.0.1:0"}, true, orbConfig{pool: 8}, activityservice.Parallel(), false, false); err != nil {
		t.Fatal(err)
	}
}

// TestDaemonDemoMultiListenerAdmin runs the round trip against a daemon
// with two listeners (issued IORs carry both endpoints as profiles) and
// the admin servant enabled.
func TestDaemonDemoMultiListenerAdmin(t *testing.T) {
	if err := run([]string{"127.0.0.1:0", "127.0.0.1:0"}, true, orbConfig{}, activityservice.DeliveryPolicy{}, false, true); err != nil {
		t.Fatal(err)
	}
}

// TestDaemonDemoRelayTree runs the round trip with the relay servant
// hosted and tree fan-out selected for remotely created activities.
func TestDaemonDemoRelayTree(t *testing.T) {
	if err := run([]string{"127.0.0.1:0"}, true, orbConfig{}, activityservice.Tree(4), true, false); err != nil {
		t.Fatal(err)
	}
}

// TestDaemonDemoOverloadProtected runs the round trip with the full
// overload-protection surface switched on: admission control and pool
// warm-up on the daemon, breaker and retry budget active for its outgoing
// calls. A healthy round trip must be untouched by all of it.
func TestDaemonDemoOverloadProtected(t *testing.T) {
	cfg := orbConfig{
		pool:        4,
		warm:        2,
		maxInflight: 32,
		admitQueue:  16,
		shedAfter:   50 * time.Millisecond,
		breaker:     5,
		breakerOpen: time.Second,
		retryRate:   10,
		retryBurst:  5,
	}
	if err := run([]string{"127.0.0.1:0"}, true, cfg, activityservice.DeliveryPolicy{}, false, false); err != nil {
		t.Fatal(err)
	}
}
