package main

import "testing"

// TestDaemonDemoRoundTrip boots the daemon on an ephemeral port and runs
// the built-in client against it: factory resolution through naming,
// remote activity creation, remote enlistment and remote completion.
func TestDaemonDemoRoundTrip(t *testing.T) {
	if err := run("127.0.0.1:0", true); err != nil {
		t.Fatal(err)
	}
}
