// Command activityd is a network activity-coordinator daemon: it hosts an
// Activity Service behind the GIOP-lite ORB so that remote parties can
// create activities, enroll Actions in their SignalSets and drive
// completion across the network — the "transactions spanning a network of
// systems" deployment of the paper's abstract.
//
// The daemon exposes an ActivityFactory servant (operation "begin") bound
// as "activityservice" in the ORB name service. Each created activity gets
// its own coordinator servant; clients talk to it through
// orb.NewActivityProxy.
//
// Usage:
//
//	activityd -listen 127.0.0.1:7411        # serve until interrupted
//	activityd -listen 127.0.0.1:0 -demo     # serve, run a self-test client, exit
//	activityd -listen 127.0.0.1:7411 -listen 127.0.0.1:7412
//	                                        # two listeners: issued IORs carry
//	                                        # both endpoints as profiles and
//	                                        # clients fail over between them
//	activityd -advertise host1:7411 -advertise host2:7411
//	                                        # endpoints minted into IORs
//	                                        # (NAT / load-balancer fronting)
//	activityd -admin                        # serve ServerStats/EndpointStats
//	                                        # on the well-known "orb-admin" key
//	activityd -pool 8 -parallel             # 8 pooled conns per endpoint,
//	                                        # parallel signal fan-out
//	activityd -relay -branching 8           # host the well-known "relay"
//	                                        # servant and fan signals out
//	                                        # through branching-factor-8
//	                                        # relay trees (DeliverTree)
//	activityd -max-inflight 64 -shed-after 50ms   # overload protection:
//	                                        # bound concurrent dispatches,
//	                                        # shed the excess with TRANSIENT
//	activityd -breaker 5 -breaker-open 1s -retry-rate 10 -retry-burst 5
//	                                        # client-side breaker + retry
//	                                        # budget for outgoing calls
//	activityd -max-inflight 64 -priority 8  # reserve 8 dispatch slots for
//	                                        # completion/recovery verbs so
//	                                        # overload sheds first-contact
//	                                        # work, not in-doubt resolution
//	activityd -ots-log /var/lib/activityd/decisions.wal
//	                                        # host a durable transaction
//	                                        # service: replay the decision
//	                                        # log on boot and serve the
//	                                        # well-known "ots-recovery"
//	                                        # servant (replay_completion)
//	                                        # plus "wal-replication" so a
//	                                        # standby can stream the log
//	activityd -ots-log decisions.wal -sync-standby 2s
//	                                        # semi-synchronous replication:
//	                                        # hold each commit decision (up
//	                                        # to 2s) until a standby has it
//	activityd -ots-log replica.wal -standby primary:7411
//	                                        # warm standby: stream the
//	                                        # primary's decision log into
//	                                        # replica.wal and, when the
//	                                        # primary dies, take over —
//	                                        # recover in-doubt branches and
//	                                        # serve ots-recovery so clients
//	                                        # fail over to this node's
//	                                        # profile of the shared IOR
//	activityd -member-id a -ots-log a.wal   # self-healing coordinator
//	                                        # group, booted as its leader
//	activityd -member-id b -ots-log b.wal -standby hostA:7411 -peer hostC:7413
//	                                        # group standby: stream the
//	                                        # leader, probe the peers, and
//	                                        # stand for fenced election —
//	                                        # highest durable LSN wins and
//	                                        # re-drives 2PC branches plus
//	                                        # the activity journal; a
//	                                        # deposed leader auto-rejoins
//	                                        # (-rejoin=false makes deposal
//	                                        # fatal instead)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/extendedtx/activityservice"
	"github.com/extendedtx/activityservice/internal/cdr"
	"github.com/extendedtx/activityservice/internal/wal"
	"github.com/extendedtx/activityservice/orb"
	"github.com/extendedtx/activityservice/ots"
)

// FactoryTypeID is the activity factory interface id.
const FactoryTypeID = orb.ActivityFactoryTypeID

// listFlag collects a repeatable string flag ("-listen a -listen b").
type listFlag []string

// String implements flag.Value.
func (f *listFlag) String() string { return strings.Join(*f, ",") }

// Set implements flag.Value, appending one occurrence.
func (f *listFlag) Set(v string) error {
	if v == "" {
		return errors.New("empty value")
	}
	*f = append(*f, v)
	return nil
}

// orbConfig collects the transport knobs forwarded to orb.New.
type orbConfig struct {
	advertise   listFlag
	pool        int
	warm        int
	maxInflight int
	admitQueue  int
	shedAfter   time.Duration
	priority    int
	breaker     int
	breakerOpen time.Duration
	retryRate   float64
	retryBurst  int
	otsLog      string
	standby     listFlag
	syncStandby time.Duration
	memberID    string
	peers       listFlag
	rejoin      bool

	shardID        string
	shardMap       listFlag
	shardJoin      bool
	shardAuthority bool
}

// options translates the flag values into ORB options, skipping unset ones.
func (c orbConfig) options() []orb.ORBOption {
	var opts []orb.ORBOption
	if c.pool > 0 {
		opts = append(opts, orb.WithPoolSize(c.pool))
	}
	if c.warm > 0 {
		opts = append(opts, orb.WithPoolWarm(c.warm))
	}
	if c.maxInflight > 0 {
		opts = append(opts, orb.WithMaxInflight(c.maxInflight))
		opts = append(opts, orb.WithAdmissionQueue(c.admitQueue, c.shedAfter))
		if c.priority > 0 {
			opts = append(opts, orb.WithPriorityOps(c.priority))
		}
	}
	if c.breaker > 0 {
		opts = append(opts, orb.WithCircuitBreaker(c.breaker, c.breakerOpen))
	}
	if c.retryBurst > 0 {
		opts = append(opts, orb.WithRetryBudget(c.retryRate, c.retryBurst))
	}
	if len(c.advertise) > 0 {
		opts = append(opts, orb.WithAdvertised(c.advertise...))
	}
	return opts
}

func main() {
	var listens listFlag
	flag.Var(&listens, "listen", "host:port to serve on; repeat for multiple listeners (default 127.0.0.1:7411)")
	demo := flag.Bool("demo", false, "run a self-test client and exit")
	parallel := flag.Bool("parallel", false, "fan signals out to enrolled actions in parallel")
	relay := flag.Bool("relay", false, "host the well-known relay servant and fan signals out through relay trees")
	branching := flag.Int("branching", 0, "relay-tree children per node with -relay (0 = default)")
	admin := flag.Bool("admin", false, "serve ServerStats/EndpointStats on the well-known orb-admin key")
	var cfg orbConfig
	flag.Var(&cfg.advertise, "advertise", "endpoint minted into issued IORs instead of the bound address; repeatable")
	flag.IntVar(&cfg.pool, "pool", 0, "client connections pooled per endpoint (0 = default)")
	flag.IntVar(&cfg.warm, "warm", 0, "connections to pre-dial per endpoint on first use (0 = off)")
	flag.IntVar(&cfg.maxInflight, "max-inflight", 0, "max concurrent server dispatches; excess is queued then shed with TRANSIENT (0 = unbounded)")
	flag.IntVar(&cfg.admitQueue, "admit-queue", 0, "admission queue depth behind -max-inflight (0 = 2x max-inflight)")
	flag.DurationVar(&cfg.shedAfter, "shed-after", 0, "max queue wait before an admitted request is shed (0 = default)")
	flag.IntVar(&cfg.priority, "priority", 0, "dispatch slots out of -max-inflight reserved for completion/recovery verbs (0 = off)")
	flag.StringVar(&cfg.otsLog, "ots-log", "", "file-backed transaction decision log; enables the hosted transaction service, crash recovery on boot and the ots-recovery servant")
	flag.Var(&cfg.standby, "standby", "run as warm standby: stream the primary's decision log from this replication endpoint into -ots-log and take over when the primary dies; repeatable for a multi-homed primary")
	flag.DurationVar(&cfg.syncStandby, "sync-standby", 0, "single-standby primary: hold each commit decision until the standby acknowledges it, up to this long (0 = asynchronous shipping); group mode: fence re-check interval of the quorum decision gate, which blocks until a majority holds the decision (0 = 2s default)")
	flag.StringVar(&cfg.memberID, "member-id", "", "join a self-healing coordinator group under this member id (needs -ots-log); with -standby/-peer the node streams the current leader and stands for fenced election, without them it boots as the group's leader")
	flag.Var(&cfg.peers, "peer", "replication endpoint of another group member, probed during leader election; repeatable (group mode)")
	flag.BoolVar(&cfg.rejoin, "rejoin", true, "after being deposed by a higher term, automatically truncate the unreplicated WAL suffix and re-join as a streaming standby; false makes deposal fatal so an operator can inspect the log first")
	flag.IntVar(&cfg.breaker, "breaker", 0, "consecutive call failures before an endpoint's circuit opens (0 = off)")
	flag.DurationVar(&cfg.breakerOpen, "breaker-open", 0, "open-circuit window before a half-open probe (0 = default)")
	flag.Float64Var(&cfg.retryRate, "retry-rate", 0, "retry-budget refill rate in tokens/second")
	flag.IntVar(&cfg.retryBurst, "retry-burst", 0, "retry-budget bucket size; attempts against a failing endpoint beyond it fail fast (0 = off)")
	flag.StringVar(&cfg.shardID, "shard", "", "serve as the fleet member with this id: follow the shard map and refuse begins for keys this member does not own (needs -shard-map unless -shard-authority)")
	flag.Var(&cfg.shardMap, "shard-map", "endpoint of the shard-map authority to follow; repeatable for a multi-homed authority")
	flag.BoolVar(&cfg.shardJoin, "shard-join", false, "register this member (its listen endpoints) into the shard map on boot")
	flag.BoolVar(&cfg.shardAuthority, "shard-authority", false, "host the authoritative shard map on the well-known shard-map key (orb-admin forwards the shard_* verbs to it)")
	flag.Parse()
	if len(listens) == 0 {
		listens = listFlag{"127.0.0.1:7411"}
	}
	if err := run(listens, *demo, cfg, deliveryFor(*parallel, *relay, *branching), *relay, *admin); err != nil {
		fmt.Fprintln(os.Stderr, "activityd:", err)
		os.Exit(1)
	}
}

// deliveryFor resolves the daemon's fan-out flags into one delivery
// policy (zero = serial).
func deliveryFor(parallel, relay bool, branching int) activityservice.DeliveryPolicy {
	switch {
	case relay:
		return activityservice.Tree(branching)
	case parallel:
		return activityservice.Parallel()
	default:
		return activityservice.DeliveryPolicy{}
	}
}

func run(listens []string, demo bool, cfg orbConfig, delivery activityservice.DeliveryPolicy, relay, admin bool) error {
	if demo && len(cfg.advertise) > 0 {
		// The demo drives a loopback client against the daemon's own
		// references; references minted from advertised (externally
		// routed) endpoints would send it off-box.
		return errors.New("-demo drives a local client and cannot be combined with -advertise")
	}
	node := orb.New(cfg.options()...)
	defer node.Shutdown()
	orb.InstallPropagation(node)

	if cfg.shardID == "" && (cfg.shardJoin || (len(cfg.shardMap) > 0 && !cfg.shardAuthority)) {
		return errors.New("-shard-join and -shard-map need -shard <member-id>")
	}
	if cfg.shardID != "" && len(cfg.shardMap) == 0 && !cfg.shardAuthority {
		return errors.New("-shard needs -shard-map (or -shard-authority to follow the local map)")
	}
	if cfg.memberID != "" && cfg.otsLog == "" {
		return errors.New("-member-id needs -ots-log for this member's durable replica of the group's log")
	}
	if cfg.memberID == "" && len(cfg.peers) > 0 {
		return errors.New("-peer needs -member-id")
	}

	var svcOpts []activityservice.Option
	var groupLog *wal.Log
	if cfg.memberID != "" {
		l, err := ots.OpenFileLog(cfg.otsLog)
		if err != nil {
			return fmt.Errorf("open group log: %w", err)
		}
		groupLog = l
		// The activity journal shares the group's replicated log, so an
		// elected leader can re-activate in-flight activity state too.
		svcOpts = append(svcOpts, activityservice.WithJournal(l))
	}
	svc := activityservice.New(svcOpts...)
	var factoryOpts []orb.FactoryOption
	if delivery.Mode != 0 {
		// Remotely created activities coordinate remote actions — the
		// latency-bound regime parallel and tree fan-out target.
		factoryOpts = append(factoryOpts, orb.WithFactoryDelivery(delivery))
	}

	ns := orb.NewNameServer()
	ns.Serve(node)
	if relay {
		orb.ServeRelay(node)
	}
	if admin {
		orb.ServeAdmin(node)
	}

	// Every listener serves the same adapter; IORs issued after the last
	// Listen carry all bound endpoints as profiles.
	for _, listen := range listens {
		endpoint, err := node.Listen(listen)
		if err != nil {
			return err
		}
		fmt.Printf("activityd: serving at %s\n", endpoint)
	}

	// Shard wiring happens after the listeners are bound: joining needs
	// this member's endpoints, and a local authority's reference should
	// carry every live profile.
	if cfg.shardAuthority {
		auth := orb.NewShardAuthority(nil)
		ref := orb.ServeShardMap(node, auth)
		ref, _ = node.IOR(orb.ShardMapKey)
		ns.Bind("shard-map", ref)
		fmt.Printf("activityd: shard-map authority at key %q\n", orb.ShardMapKey)
	}
	if cfg.shardID != "" {
		authEndpoints := []string(cfg.shardMap)
		if len(authEndpoints) == 0 {
			authEndpoints = node.Endpoints()
		}
		authRef := orb.ShardMapAt(authEndpoints...)
		member := orb.NewShardMember(node, cfg.shardID, authRef, orb.WithOnDrain(svc.Drain))
		if cfg.shardJoin {
			joinCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			epoch, err := orb.NewShardMapClient(node, authRef).Add(joinCtx,
				orb.ClusterMember{ID: cfg.shardID, Endpoints: node.Endpoints(), Weight: 1})
			cancel()
			if err != nil {
				return fmt.Errorf("shard join: %w", err)
			}
			fmt.Printf("activityd: joined shard map as %q (epoch %d)\n", cfg.shardID, epoch)
		}
		syncCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		err := member.Sync(syncCtx)
		cancel()
		if err != nil {
			return fmt.Errorf("shard map sync: %w", err)
		}
		go member.Run()
		defer member.Stop()
		factoryOpts = append(factoryOpts, orb.WithFactoryShard(member))
		fmt.Printf("activityd: sharded as member %q\n", cfg.shardID)
	}

	orb.ServeActivityFactory(node, svc, factoryOpts...)
	factoryRef, _ := node.IOR(orb.ActivityFactoryKey)
	ns.Bind("activityservice", factoryRef)
	fmt.Printf("activityd: factory IOR %s\n", factoryRef)
	if admin {
		fmt.Printf("activityd: admin servant at key %q\n", orb.AdminKey)
	}
	switch {
	case cfg.memberID != "":
		if err := runGroup(node, svc, groupLog, cfg); err != nil {
			return err
		}
	case len(cfg.standby) > 0:
		if cfg.otsLog == "" {
			return errors.New("-standby needs -ots-log for the local replica of the primary's decision log")
		}
		if err := runStandby(node, cfg.otsLog, cfg.standby); err != nil {
			return err
		}
	case cfg.otsLog != "":
		if err := hostPrimary(node, cfg.otsLog, cfg.syncStandby); err != nil {
			return err
		}
	}

	if demo {
		return runDemo(node.Endpoints())
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("activityd: shutting down")
	return nil
}

// hostPrimary opens the durable decision log and hosts a transaction
// service on it: participants named by in-doubt commit decisions are
// re-bound as remote proxies, one recovery pass re-drives their phase two,
// and the well-known ots-recovery servant is activated so restarted
// participants can ask replay_completion for their outcome (and tooling
// can scrape or re-run recovery over the wire). The well-known
// wal-replication servant is activated too, so a -standby node can stream
// the log; with syncStandby > 0 each commit decision is additionally held
// (up to that long) until a standby acknowledges it.
func hostPrimary(node *orb.ORB, path string, syncStandby time.Duration) error {
	log, err := ots.OpenFileLog(path)
	if err != nil {
		return fmt.Errorf("open ots log: %w", err)
	}
	primary, _ := orb.ServeReplication(node, log)
	var extra []ots.Option
	if syncStandby > 0 {
		extra = append(extra, ots.WithDecisionBarrier(primary.DecisionBarrier(syncStandby)))
	}
	res, err := orb.HostRecovery(node, log, extra...)
	if err != nil {
		return err
	}
	stats := res.Stats
	fmt.Printf("activityd: recovery replayed %d decisions (%d committed, %d missing, %d failed, %d heuristic)\n",
		stats.DecisionsReplayed, stats.ResourcesCommitted, stats.ResourcesMissing,
		stats.ResourcesFailed, stats.ResourcesHeuristic)
	fmt.Printf("activityd: recovery servant at key %q, replication at key %q\n",
		orb.RecoveryKey, orb.ReplicationKey)
	return nil
}

// runStandby streams the primary's decision log (via its well-known
// replication servant at the given endpoints) into a local replica and
// arms takeover: when the primary stops answering, the standby hosts
// recovery over the replica — re-driving in-doubt branches to their
// logged outcomes — and serves ots-recovery and wal-replication itself,
// so participants holding the shared multi-profile IOR converge through
// this node and a replacement standby can chain behind it.
func runStandby(node *orb.ORB, path string, primaries []string) error {
	log, err := ots.OpenFileLog(path)
	if err != nil {
		return fmt.Errorf("open replica log: %w", err)
	}
	follower := orb.NewReplicationFollower(node, orb.ReplicationAt(primaries...), log)
	fmt.Printf("activityd: standby following %s into %s\n", strings.Join(primaries, ","), path)
	go func() {
		err := follower.Run(context.Background())
		if !errors.Is(err, orb.ErrPrimaryLost) {
			if err != nil {
				fmt.Fprintln(os.Stderr, "activityd: standby replication stopped:", err)
			}
			return
		}
		fmt.Println("activityd: primary lost — taking over")
		res, err := orb.HostRecovery(node, log)
		if err != nil {
			fmt.Fprintln(os.Stderr, "activityd: takeover recovery failed:", err)
			return
		}
		orb.ServeReplication(node, log)
		stats := res.Stats
		fmt.Printf("activityd: takeover replayed %d decisions (%d committed, %d missing, %d failed, %d heuristic)\n",
			stats.DecisionsReplayed, stats.ResourcesCommitted, stats.ResourcesMissing,
			stats.ResourcesFailed, stats.ResourcesHeuristic)
		fmt.Printf("activityd: recovery servant at key %q, replication at key %q\n",
			orb.RecoveryKey, orb.ReplicationKey)
	}()
	return nil
}

// runGroup hosts one member of a self-healing coordinator group. The
// durable log carries both the transaction decisions and the activity
// journal; replication ships it to every standby, and fenced leader
// election picks the member with the highest durable watermark when the
// leader dies. Takeover re-drives in-doubt transaction branches and
// re-activates the in-flight activity tree from the journal. A deposed
// leader truncates its unreplicated suffix and re-joins as a streaming
// standby of the new term (unless -rejoin=false, which makes deposal
// fatal so an operator can inspect the log first).
func runGroup(node *orb.ORB, svc *activityservice.Service, log *wal.Log, cfg orbConfig) error {
	var g *orb.GroupMember
	// The group gate blocks until a quorum of the electorate holds each
	// decision; -sync-standby only tunes how often the blocked gate
	// re-checks the fence, so group mode gets a non-zero default instead
	// of the primary/standby pair's 0-means-asynchronous.
	gateInterval := cfg.syncStandby
	if gateInterval <= 0 {
		gateInterval = 2 * time.Second
	}
	takeover := func(ctx context.Context) error {
		extra := []ots.Option{ots.WithDecisionGate(g.DecisionGate(gateInterval))}
		res, err := orb.HostRecovery(node, log, extra...)
		if err != nil {
			return err
		}
		stats := res.Stats
		fmt.Printf("activityd: group leader (term %d): replayed %d decisions (%d committed, %d missing, %d failed, %d heuristic)\n",
			log.KnownTerm(), stats.DecisionsReplayed, stats.ResourcesCommitted, stats.ResourcesMissing,
			stats.ResourcesFailed, stats.ResourcesHeuristic)
		roots, err := svc.Recover(log)
		if err != nil {
			return fmt.Errorf("activity journal takeover: %w", err)
		}
		fmt.Printf("activityd: activity journal activated %d in-flight root activities\n", len(roots))
		return nil
	}
	g = orb.NewGroupMember(node, log, orb.GroupConfig{
		MemberID:   cfg.memberID,
		Peers:      cfg.peers,
		LeaderHint: cfg.standby,
		Takeover:   takeover,
		OnDemote: func(term uint64, leader string) {
			if !cfg.rejoin {
				fmt.Fprintf(os.Stderr, "activityd: deposed by term %d (leader %q); -rejoin=false, exiting for operator inspection\n", term, leader)
				os.Exit(3)
			}
			fmt.Printf("activityd: deposed by term %d (leader %q) — re-joining as standby\n", term, leader)
		},
	})
	g.InstallAdminScrape()

	if len(cfg.standby) == 0 && len(cfg.peers) == 0 {
		// Nothing to follow or probe: boot as the group's leader.
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		err := g.Promote(ctx)
		cancel()
		if err != nil {
			return fmt.Errorf("group promote: %w", err)
		}
		fmt.Printf("activityd: group member %q leading term %d\n", cfg.memberID, log.KnownTerm())
	} else {
		fmt.Printf("activityd: group member %q standing by (leader hint %s, %d peers)\n",
			cfg.memberID, strings.Join(cfg.standby, ","), len(cfg.peers))
	}
	go func() {
		if err := g.Run(context.Background()); err != nil && !errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "activityd: group member stopped:", err)
		}
	}()
	return nil
}

// runDemo exercises the daemon from a separate client ORB: resolve the
// factory, create an activity, enroll a local action, complete remotely.
func runDemo(endpoints []string) error {
	ctx := context.Background()
	client := orb.New()
	defer client.Shutdown()
	if _, err := client.Listen("127.0.0.1:0"); err != nil {
		return err
	}

	naming := orb.NewNameClient(client, orb.NameServiceAt(endpoints...))
	factoryRef, err := naming.Resolve(ctx, "activityservice")
	if err != nil {
		return err
	}

	e := cdr.NewEncoder(32)
	e.WriteString("demo-activity")
	body, err := client.Invoke(ctx, factoryRef, "begin", e.Bytes())
	if err != nil {
		return err
	}
	d := cdr.NewDecoder(body)
	coordRef := orb.DecodeIOR(d)
	if err := d.Err(); err != nil {
		return err
	}
	fmt.Printf("demo: created remote activity, coordinator %s\n", coordRef.Key)

	proxy := orb.NewActivityProxy(client, coordRef)
	if _, err := proxy.AddAction(ctx, activityservice.DefaultCompletionSet,
		activityservice.ActionFunc(func(_ context.Context, sig activityservice.Signal) (activityservice.Outcome, error) {
			fmt.Printf("demo: local action received %s from remote coordinator\n", sig)
			return activityservice.Outcome{Name: "acknowledged"}, nil
		})); err != nil {
		return err
	}
	out, err := proxy.Complete(ctx, activityservice.CompletionSuccess)
	if err != nil {
		return err
	}
	fmt.Printf("demo: remote completion outcome %s (%v responses)\n", out.Name, out.Data)
	return nil
}
