package main

import (
	"context"
	"testing"
)

// TestEveryFigureRegenerates drives each figure generator; the protocol
// assertions live in the package tests — this guards the tool itself.
func TestEveryFigureRegenerates(t *testing.T) {
	ctx := context.Background()
	for n, f := range figures {
		n, f := n, f
		t.Run(f.title, func(t *testing.T) {
			if err := f.fn(ctx); err != nil {
				t.Fatalf("figure %d: %v", n, err)
			}
		})
	}
}

func TestRunAll(t *testing.T) {
	if err := run(0); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownFigure(t *testing.T) {
	if err := run(99); err == nil {
		t.Fatal("unknown figure accepted")
	}
}
