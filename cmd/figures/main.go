// Command figures regenerates the protocol artifacts of every figure in
// the paper's evaluation: the message sequences of figs. 5, 8, 10, 11 and
// 12, the timelines of figs. 1, 2 and 4, the fig. 7 state machine, the
// fig. 9 compensation matrix and the fig. 13 layering.
//
// Usage:
//
//	figures            # all figures
//	figures -fig 8     # one figure
//
// Each figure prints the trace of coordinator/SignalSet/Action
// interactions in the arrow notation of internal/trace; compare with the
// sequence charts in the paper (see EXPERIMENTS.md for the mapping).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"

	"github.com/extendedtx/activityservice"
	"github.com/extendedtx/activityservice/hls/btp"
	"github.com/extendedtx/activityservice/hls/opennested"
	"github.com/extendedtx/activityservice/hls/twopc"
	"github.com/extendedtx/activityservice/hls/workflow"
	"github.com/extendedtx/activityservice/ots"
)

func main() {
	fig := flag.Int("fig", 0, "figure number to regenerate (0 = all)")
	flag.Parse()
	if err := run(*fig); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

var figures = map[int]struct {
	title string
	fn    func(ctx context.Context) error
}{
	1:  {"logical long-running transaction, no failure", fig1},
	2:  {"logical long-running transaction, t4 aborts + compensation", fig2},
	4:  {"activity and transaction relationship", fig4},
	5:  {"activity coordinator signalling actions", fig5},
	7:  {"SignalSet state transition diagram", fig7},
	8:  {"two-phase commit with Signals, SignalSets and Actions", fig8},
	9:  {"nested top-level transactions with compensation", fig9},
	10: {"workflow coordination", fig10},
	11: {"the BTP PrepareSignalSet", fig11},
	12: {"the BTP CompleteSignalSet", fig12},
	13: {"J2EE Activity Service layering", fig13},
}

func run(which int) error {
	ctx := context.Background()
	var nums []int
	for n := range figures {
		if which == 0 || which == n {
			nums = append(nums, n)
		}
	}
	if len(nums) == 0 {
		return fmt.Errorf("unknown figure %d", which)
	}
	sort.Ints(nums)
	for _, n := range nums {
		f := figures[n]
		fmt.Printf("\n===== Figure %d: %s =====\n", n, f.title)
		if err := f.fn(ctx); err != nil {
			return fmt.Errorf("figure %d: %w", n, err)
		}
	}
	return nil
}

// traced builds a service with a recorder and returns both.
func traced() (*activityservice.Service, func()) {
	rec := activityservice.NewTraceRecorder()
	svc := activityservice.New(activityservice.WithTrace(rec))
	return svc, func() { fmt.Println(rec.Render()) }
}

func fig1(ctx context.Context) error {
	svc, dump := traced()
	defer dump()
	var tasks []workflow.Task
	prev := ""
	for i := 1; i <= 6; i++ {
		name := fmt.Sprintf("t%d", i)
		var deps []string
		if prev != "" {
			deps = []string{prev}
		}
		tasks = append(tasks, workflow.Task{
			Name: name, DependsOn: deps,
			Run: func(context.Context) error { return nil },
		})
		prev = name
	}
	_, err := workflow.New(svc).Execute(ctx, workflow.Process{Name: "application-activity", Tasks: tasks})
	return err
}

func fig2(ctx context.Context) error {
	svc, dump := traced()
	defer dump()
	ok := func(context.Context) error { return nil }
	p := workflow.Process{
		Name: "application-activity",
		Tasks: []workflow.Task{
			{Name: "t1", Run: ok},
			{Name: "t2", DependsOn: []string{"t1"}, Run: ok,
				Compensate: func(context.Context) error { return nil }},
			{Name: "t3", DependsOn: []string{"t2"}, Run: ok},
			{Name: "t4", DependsOn: []string{"t3"},
				Run: func(context.Context) error { return errors.New("hotel unavailable") }},
		},
		OnFailure: map[string]workflow.Continuation{
			"t4": {
				Compensate: []string{"t2"}, // tc1
				Alternatives: []workflow.Task{
					{Name: "t5'", Run: ok},
					{Name: "t6'", DependsOn: []string{"t5'"}, Run: ok},
				},
			},
		},
	}
	_, err := workflow.New(svc).Execute(ctx, p)
	return err
}

func fig4(ctx context.Context) error {
	svc, dump := traced()
	defer dump()
	txs := ots.NewService()

	// A1 uses two top-level transactions during its execution.
	a1 := svc.Begin("A1")
	for i := 0; i < 2; i++ {
		tx := txs.Begin()
		if err := tx.Commit(false); err != nil {
			return err
		}
	}
	fmt.Println("A1: two top-level transactions committed within the activity")
	if _, err := a1.Complete(ctx); err != nil {
		return err
	}

	// A2 uses none.
	a2 := svc.Begin("A2")
	if _, err := a2.Complete(ctx); err != nil {
		return err
	}

	// A3 is transactional and contains transactional activity A3'.
	a3 := svc.Begin("A3")
	tx3 := txs.Begin()
	a3p, err := a3.BeginChild("A3'")
	if err != nil {
		return err
	}
	sub, err := tx3.BeginSubtransaction()
	if err != nil {
		return err
	}
	if err := sub.Commit(false); err != nil {
		return err
	}
	if _, err := a3p.Complete(ctx); err != nil {
		return err
	}
	if err := tx3.Commit(false); err != nil {
		return err
	}
	fmt.Println("A3: nested transactional activity A3' committed inside A3's transaction")
	if _, err := a3.Complete(ctx); err != nil {
		return err
	}

	for _, name := range []string{"A4", "A5"} {
		a := svc.Begin(name)
		if _, err := a.Complete(ctx); err != nil {
			return err
		}
	}
	return nil
}

func fig5(ctx context.Context) error {
	svc, dump := traced()
	defer dump()
	a := svc.Begin("activity-coordinator")
	set := activityservice.NewSequenceSet("signal-set", "signal")
	if err := a.RegisterSignalSet(set); err != nil {
		return err
	}
	for i := 1; i <= 4; i++ {
		name := fmt.Sprintf("action-%d", i)
		if _, err := a.AddNamedAction("signal-set", name, activityservice.ActionFunc(
			func(context.Context, activityservice.Signal) (activityservice.Outcome, error) {
				return activityservice.Outcome{Name: "ok"}, nil
			})); err != nil {
			return err
		}
	}
	if _, err := a.Signal(ctx, "signal-set"); err != nil {
		return err
	}
	_, err := a.Complete(ctx)
	return err
}

func fig7(ctx context.Context) error {
	svc := activityservice.New()
	a := svc.Begin("A")
	set := activityservice.NewSequenceSet("demo", "one", "two")
	if err := a.RegisterSignalSet(set); err != nil {
		return err
	}
	coord := a.Coordinator()
	fmt.Printf("state before first get_signal: %s\n", coord.SetState(set))
	if _, err := a.Signal(ctx, "demo"); err != nil {
		return err
	}
	fmt.Printf("state after protocol run:      %s\n", coord.SetState(set))
	if _, err := a.Signal(ctx, "demo"); err != nil {
		fmt.Printf("reuse after End rejected:      %v\n", err)
	}
	fmt.Println("transitions: Waiting -> GetSignal -> End (no reuse), per fig. 7")
	_, err := a.Complete(ctx)
	return err
}

func fig8(ctx context.Context) error {
	svc, dump := traced()
	defer dump()
	coord := twopc.NewCoordinator(svc)
	tx, err := coord.Begin("coordinator")
	if err != nil {
		return err
	}
	for i := 1; i <= 2; i++ {
		if err := tx.EnlistNamed(fmt.Sprintf("action%d", i), committingResource{}); err != nil {
			return err
		}
	}
	committed, err := tx.Commit(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("outcome: committed=%v\n", committed)
	return nil
}

// committingResource always votes commit.
type committingResource struct{}

func (committingResource) Prepare() (ots.Vote, error) { return ots.VoteCommit, nil }
func (committingResource) Commit() error              { return nil }
func (committingResource) Rollback() error            { return nil }
func (committingResource) CommitOnePhase() error      { return nil }
func (committingResource) Forget() error              { return nil }

func fig9(ctx context.Context) error {
	svc, dump := traced()
	defer dump()
	a, err := opennested.Begin(svc, "A", nil)
	if err != nil {
		return err
	}
	b, err := opennested.Begin(svc, "B", a)
	if err != nil {
		return err
	}
	comp, err := b.AddCompensation(svc, "!B", func(context.Context) error {
		fmt.Println("!B runs: undoing B's committed work")
		return nil
	})
	if err != nil {
		return err
	}
	if _, err := b.Complete(ctx, true); err != nil { // B commits
		return err
	}
	if _, err := a.Complete(ctx, false); err != nil { // A rolls back
		return err
	}
	fmt.Printf("compensation ran: %v\n", comp.Ran())
	return nil
}

func fig10(ctx context.Context) error {
	svc, dump := traced()
	defer dump()
	ok := func(context.Context) error { return nil }
	p := workflow.Process{
		Name: "a",
		Tasks: []workflow.Task{
			{Name: "b", Run: ok},
			{Name: "c", Run: ok},
			{Name: "d", DependsOn: []string{"b", "c"}, Run: ok},
		},
	}
	_, err := workflow.New(svc).Execute(ctx, p)
	return err
}

func fig11(ctx context.Context) error {
	svc, dump := traced()
	defer dump()
	atom, err := btp.NewAtom(svc, "coordinator")
	if err != nil {
		return err
	}
	for i := 1; i <= 2; i++ {
		if err := atom.EnrollNamed(fmt.Sprintf("action%d", i), reservation{}); err != nil {
			return err
		}
	}
	if err := atom.Prepare(ctx); err != nil {
		return err
	}
	fmt.Printf("atom state after prepare: %s (user decides confirm/cancel later)\n", atom.State())
	return atom.Cancel(ctx)
}

func fig12(ctx context.Context) error {
	svc, dump := traced()
	defer dump()
	atom, err := btp.NewAtom(svc, "coordinator")
	if err != nil {
		return err
	}
	for i := 1; i <= 2; i++ {
		if err := atom.EnrollNamed(fmt.Sprintf("action%d", i), reservation{}); err != nil {
			return err
		}
	}
	if err := atom.Prepare(ctx); err != nil {
		return err
	}
	return atom.Confirm(ctx)
}

// reservation is a trivially-successful BTP participant.
type reservation struct{}

func (reservation) Prepare() error { return nil }
func (reservation) Confirm() error { return nil }
func (reservation) Cancel() error  { return nil }

func fig13(ctx context.Context) error {
	fmt.Println("layering (fig. 13):")
	fmt.Println("  High Level Service (SignalSets, Actions)   -> hls/twopc, hls/btp, ...")
	fmt.Println("  ActivityManager | UserActivity             -> activityservice.ActivityManager/UserActivity")
	fmt.Println("  Activity Service (incl. coordinator)       -> internal/core")
	fmt.Println("  Distribution & context manipulation        -> internal/orb + internal/remote")
	svc, dump := traced()
	defer dump()
	ua := activityservice.NewUserActivity(svc)
	am := activityservice.NewActivityManager(svc)
	actx, _, err := ua.Begin(ctx, "demarcated")
	if err != nil {
		return err
	}
	set := activityservice.NewSequenceSet("hls-protocol", "step")
	if err := am.RegisterSignalSet(actx, set); err != nil {
		return err
	}
	if _, err := am.AddAction(actx, "hls-protocol", activityservice.ActionFunc(
		func(context.Context, activityservice.Signal) (activityservice.Outcome, error) {
			return activityservice.Outcome{Name: "done"}, nil
		})); err != nil {
		return err
	}
	if _, err := am.Broadcast(actx, "hls-protocol"); err != nil {
		return err
	}
	_, _, err = ua.Complete(actx)
	return err
}
