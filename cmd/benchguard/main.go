// Command benchguard is the CI allocation-regression gate: it parses `go
// test -bench -benchmem` output from stdin and fails when a benchmark's
// allocs/op exceeds its pinned threshold.
//
// Usage:
//
//	go test -run=xxx -bench BenchmarkWirePath -benchtime=100x -benchmem ./internal/orb/ |
//	  go run ./cmd/benchguard \
//	    -max-allocs 'BenchmarkWirePath/body=0/serial=6' \
//	    -max-allocs 'BenchmarkWirePath/body=4096/serial=8'
//
// Each -max-allocs takes "prefix=limit": every benchmark result line
// whose name starts with prefix (the trailing -N GOMAXPROCS suffix is
// ignored) must report allocs/op <= limit. A rule that matches no line
// fails too, so a renamed benchmark cannot silently disable its gate.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// rule is one "prefix=limit" allocation bound.
type rule struct {
	prefix string
	limit  float64
	hits   int
}

// ruleList implements flag.Value for repeated -max-allocs flags.
type ruleList []*rule

// String implements flag.Value.
func (r *ruleList) String() string { return fmt.Sprintf("%d rules", len(*r)) }

// Set implements flag.Value, parsing "prefix=limit".
func (r *ruleList) Set(v string) error {
	eq := strings.LastIndex(v, "=")
	if eq <= 0 {
		return fmt.Errorf("want prefix=limit, got %q", v)
	}
	limit, err := strconv.ParseFloat(v[eq+1:], 64)
	if err != nil {
		return fmt.Errorf("bad limit in %q: %v", v, err)
	}
	*r = append(*r, &rule{prefix: v[:eq], limit: limit})
	return nil
}

func main() {
	var rules ruleList
	flag.Var(&rules, "max-allocs", "allocs/op bound as 'benchmark-name-prefix=limit' (repeatable)")
	flag.Parse()
	if len(rules) == 0 {
		fmt.Fprintln(os.Stderr, "benchguard: no -max-allocs rules given")
		os.Exit(2)
	}

	failed := false
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass the stream through for the CI log
		name, allocs, ok := parseBenchLine(line)
		if !ok {
			continue
		}
		for _, r := range rules {
			if !benchMatches(name, r.prefix) {
				continue
			}
			r.hits++
			if allocs > r.limit {
				failed = true
				fmt.Fprintf(os.Stderr, "benchguard: FAIL %s: %.1f allocs/op exceeds limit %.1f (rule %s)\n",
					name, allocs, r.limit, r.prefix)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchguard: read stdin:", err)
		os.Exit(2)
	}
	for _, r := range rules {
		if r.hits == 0 {
			failed = true
			fmt.Fprintf(os.Stderr, "benchguard: FAIL rule %s matched no benchmark line (renamed or not run?)\n", r.prefix)
		}
	}
	if failed {
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "benchguard: all allocation bounds hold")
}

// parseBenchLine extracts (name, allocs/op) from one `go test -benchmem`
// result line; ok is false for any other line.
func parseBenchLine(line string) (string, float64, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return "", 0, false
	}
	fields := strings.Fields(line)
	for i := 0; i+1 < len(fields); i++ {
		if fields[i+1] == "allocs/op" {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return "", 0, false
			}
			return fields[0], v, true
		}
	}
	return "", 0, false
}

// benchMatches reports whether a result line's benchmark name falls under
// a rule prefix, ignoring the trailing -GOMAXPROCS suffix go test adds.
func benchMatches(name, prefix string) bool {
	if !strings.HasPrefix(name, prefix) {
		return false
	}
	rest := name[len(prefix):]
	return rest == "" || rest[0] == '/' || rest[0] == '-'
}
