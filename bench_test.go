// Benchmarks reproducing the cost of every protocol artifact in the
// paper's evaluation (figs. 1, 2, 5, 8–12 and the §3.3/§3.4 mechanisms),
// plus the ablations DESIGN.md calls out: the generic framework vs the
// hand-coded OTS protocol, property-group propagation behaviours, and
// delivery-guarantee levels. See EXPERIMENTS.md for the mapping to the
// paper and the measured series.
package activityservice_test

import (
	"context"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/extendedtx/activityservice"
	"github.com/extendedtx/activityservice/hls/btp"
	"github.com/extendedtx/activityservice/hls/lruow"
	"github.com/extendedtx/activityservice/hls/opennested"
	"github.com/extendedtx/activityservice/hls/saga"
	"github.com/extendedtx/activityservice/hls/twopc"
	"github.com/extendedtx/activityservice/hls/workflow"
	"github.com/extendedtx/activityservice/internal/cdr"
	"github.com/extendedtx/activityservice/internal/lockmgr"
	"github.com/extendedtx/activityservice/internal/store"
	"github.com/extendedtx/activityservice/internal/wal"
	"github.com/extendedtx/activityservice/orb"
	"github.com/extendedtx/activityservice/ots"
)

// openMemory reopens a journal snapshot, simulating a restart.
func openMemory(snap []byte) (*wal.Log, error) { return wal.OpenMemory(snap) }

func noopAction() activityservice.Action {
	return activityservice.ActionFunc(
		func(context.Context, activityservice.Signal) (activityservice.Outcome, error) {
			return activityservice.Outcome{Name: "ok"}, nil
		})
}

// okResource is a minimal always-commit participant.
type okResource struct{}

func (okResource) Prepare() (ots.Vote, error) { return ots.VoteCommit, nil }
func (okResource) Commit() error              { return nil }
func (okResource) Rollback() error            { return nil }
func (okResource) CommitOnePhase() error      { return nil }
func (okResource) Forget() error              { return nil }

// BenchmarkFig01LongRunningChain measures fig. 1: a long-running activity
// as a chain of n coordinated short units.
func BenchmarkFig01LongRunningChain(b *testing.B) {
	b.ReportAllocs()
	for _, n := range []int{2, 6, 16} {
		b.Run(fmt.Sprintf("steps=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			svc := activityservice.New()
			engine := workflow.New(svc)
			ok := func(context.Context) error { return nil }
			var tasks []workflow.Task
			for i := 0; i < n; i++ {
				t := workflow.Task{Name: fmt.Sprintf("t%d", i+1), Run: ok}
				if i > 0 {
					t.DependsOn = []string{fmt.Sprintf("t%d", i)}
				}
				tasks = append(tasks, t)
			}
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := engine.Execute(ctx, workflow.Process{Name: "chain", Tasks: tasks})
				if err != nil || !res.Ok {
					b.Fatalf("res=%+v err=%v", res, err)
				}
			}
		})
	}
}

// BenchmarkFig02CompensationChain measures fig. 2: the chain with a step-4
// failure, one compensation and two alternatives.
func BenchmarkFig02CompensationChain(b *testing.B) {
	b.ReportAllocs()
	svc := activityservice.New()
	engine := workflow.New(svc)
	ok := func(context.Context) error { return nil }
	fail := func(context.Context) error { return errors.New("t4 aborts") }
	p := workflow.Process{
		Name: "booking",
		Tasks: []workflow.Task{
			{Name: "t1", Run: ok},
			{Name: "t2", DependsOn: []string{"t1"}, Run: ok, Compensate: ok},
			{Name: "t3", DependsOn: []string{"t2"}, Run: ok},
			{Name: "t4", DependsOn: []string{"t3"}, Run: fail},
		},
		OnFailure: map[string]workflow.Continuation{
			"t4": {Compensate: []string{"t2"}, Alternatives: []workflow.Task{
				{Name: "t5'", Run: ok},
				{Name: "t6'", DependsOn: []string{"t5'"}, Run: ok},
			}},
		},
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := engine.Execute(ctx, p)
		if err != nil || !res.Ok {
			b.Fatalf("res=%+v err=%v", res, err)
		}
	}
}

// BenchmarkFig05SignalFanout measures the fig. 5 broadcast: one signal set
// delivering to n registered actions.
func BenchmarkFig05SignalFanout(b *testing.B) {
	b.ReportAllocs()
	for _, n := range []int{1, 4, 16, 64, 256} {
		b.Run(fmt.Sprintf("actions=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			svc := activityservice.New()
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a := svc.Begin("fanout")
				set := activityservice.NewSequenceSet("s", "ping")
				if err := a.RegisterSignalSet(set); err != nil {
					b.Fatal(err)
				}
				for j := 0; j < n; j++ {
					if _, err := a.AddAction("s", noopAction()); err != nil {
						b.Fatal(err)
					}
				}
				if _, err := a.Signal(ctx, "s"); err != nil {
					b.Fatal(err)
				}
				if _, err := a.Complete(ctx); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParallelFanout compares serial and parallel delivery of one
// fig. 5 broadcast side by side, with and without simulated per-action
// latency: the parallel engine's reason to exist is the latency-bound
// regime, where serial delivery pays fanout×latency per signal and
// parallel pays ~ceil(fanout/workers)×latency.
func BenchmarkParallelFanout(b *testing.B) {
	b.ReportAllocs()
	latencyAction := func(d time.Duration) activityservice.Action {
		if d == 0 {
			return noopAction()
		}
		return activityservice.ActionFunc(
			func(ctx context.Context, _ activityservice.Signal) (activityservice.Outcome, error) {
				select {
				case <-ctx.Done():
					return activityservice.Outcome{Name: "interrupted"}, nil
				case <-time.After(d):
					return activityservice.Outcome{Name: "ok"}, nil
				}
			})
	}
	policies := []struct {
		name   string
		policy activityservice.DeliveryPolicy
	}{
		{"serial", activityservice.DeliveryPolicy{Mode: activityservice.DeliverSerial}},
		{"parallel", activityservice.Parallel()},
	}
	for _, fanout := range []int{8, 64, 512} {
		for _, latency := range []time.Duration{0, 100 * time.Microsecond} {
			for _, p := range policies {
				name := fmt.Sprintf("fanout=%d/latency=%s/%s", fanout, latency, p.name)
				b.Run(name, func(b *testing.B) {
					b.ReportAllocs()
					svc := activityservice.New(activityservice.WithDelivery(p.policy))
					ctx := context.Background()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						a := svc.Begin("fanout")
						set := activityservice.NewSequenceSet("s", "ping")
						if err := a.RegisterSignalSet(set); err != nil {
							b.Fatal(err)
						}
						for j := 0; j < fanout; j++ {
							if _, err := a.AddAction("s", latencyAction(latency)); err != nil {
								b.Fatal(err)
							}
						}
						if _, err := a.Signal(ctx, "s"); err != nil {
							b.Fatal(err)
						}
						if _, err := a.Complete(ctx); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		}
	}
}

// BenchmarkRemoteFanout measures the distributed fig. 5 broadcast: one
// signal fanned out to actions behind the ORB over TCP, across delivery
// policy (serial vs parallel) and client connection pool size. Each remote
// action holds its node for 100µs, so serial delivery pays
// fanout×(RTT+100µs) per signal while parallel delivery through the pooled
// transport overlaps the round trips — the regime ROADMAP queued behind
// connection pooling.
func BenchmarkRemoteFanout(b *testing.B) {
	b.ReportAllocs()
	const actionLatency = 100 * time.Microsecond
	policies := []struct {
		name   string
		policy activityservice.DeliveryPolicy
	}{
		{"serial", activityservice.DeliveryPolicy{Mode: activityservice.DeliverSerial}},
		{"parallel", activityservice.Parallel()},
	}
	for _, fanout := range []int{8, 64} {
		for _, pool := range []int{1, 4, 16} {
			for _, p := range policies {
				name := fmt.Sprintf("fanout=%d/pool=%d/%s", fanout, pool, p.name)
				b.Run(name, func(b *testing.B) {
					b.ReportAllocs()
					serverORB := orb.New()
					defer serverORB.Shutdown()
					if _, err := serverORB.Listen("127.0.0.1:0"); err != nil {
						b.Fatal(err)
					}
					clientORB := orb.New(orb.WithPoolSize(pool))
					defer clientORB.Shutdown()

					actions := make([]activityservice.Action, fanout)
					for i := range actions {
						ref := orb.ExportAction(serverORB, activityservice.ActionFunc(
							func(context.Context, activityservice.Signal) (activityservice.Outcome, error) {
								time.Sleep(actionLatency)
								return activityservice.Outcome{Name: "ok"}, nil
							}))
						ref, _ = serverORB.IOR(ref.Key)
						actions[i] = orb.ImportAction(clientORB, ref)
					}

					svc := activityservice.New(activityservice.WithDelivery(p.policy))
					ctx := context.Background()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						a := svc.Begin("remote-fanout")
						set := activityservice.NewSequenceSet("s", "ping")
						if err := a.RegisterSignalSet(set); err != nil {
							b.Fatal(err)
						}
						for _, action := range actions {
							if _, err := a.AddAction("s", action); err != nil {
								b.Fatal(err)
							}
						}
						if _, err := a.Signal(ctx, "s"); err != nil {
							b.Fatal(err)
						}
						if _, err := a.Complete(ctx); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		}
	}
}

// BenchmarkTreeFanout measures relay-tree delivery against flat parallel
// delivery over TCP: participants spread across site ORBs that each host
// the well-known relay servant, so tree mode ships one batch per subtree
// root (a constant-size plant-id reference after the first round) while
// flat mode writes one frame per participant. The tree configurations are
// the allocation budget benchguard gates in CI: the steady-state relay
// hot path — ref batch encode, servant dispatch, result aggregation —
// must not regress into per-member allocations.
func BenchmarkTreeFanout(b *testing.B) {
	b.ReportAllocs()
	const sites = 4
	policies := []struct {
		name   string
		policy activityservice.DeliveryPolicy
	}{
		{"flat", activityservice.Parallel()},
		{"tree", activityservice.Tree(8)},
	}
	for _, fanout := range []int{64, 256} {
		siteORBs := make([]*orb.ORB, sites)
		for i := range siteORBs {
			siteORBs[i] = orb.New()
			if _, err := siteORBs[i].Listen("127.0.0.1:0"); err != nil {
				b.Fatal(err)
			}
			orb.ServeRelay(siteORBs[i])
		}
		refs := make([]orb.IOR, fanout)
		for i := range refs {
			site := siteORBs[i%sites]
			ref := orb.ExportAction(site, activityservice.ActionFunc(
				func(context.Context, activityservice.Signal) (activityservice.Outcome, error) {
					return activityservice.Outcome{Name: "ok"}, nil
				}))
			refs[i], _ = site.IOR(ref.Key)
		}
		for _, p := range policies {
			name := fmt.Sprintf("fanout=%d/sites=%d/%s", fanout, sites, p.name)
			b.Run(name, func(b *testing.B) {
				b.ReportAllocs()
				clientORB := orb.New()
				defer clientORB.Shutdown()
				actions := make([]activityservice.Action, fanout)
				for i, ref := range refs {
					actions[i] = orb.ImportAction(clientORB, ref)
				}
				svc := activityservice.New(activityservice.WithDelivery(p.policy))
				ctx := context.Background()
				round := func() {
					a := svc.Begin("tree-fanout")
					set := activityservice.NewSequenceSet("s", "ping")
					if err := a.RegisterSignalSet(set); err != nil {
						b.Fatal(err)
					}
					for _, action := range actions {
						if _, err := a.AddAction("s", action); err != nil {
							b.Fatal(err)
						}
					}
					if _, err := a.Signal(ctx, "s"); err != nil {
						b.Fatal(err)
					}
					if _, err := a.Complete(ctx); err != nil {
						b.Fatal(err)
					}
				}
				// One warm-up round dials the connections and plants the
				// memberships; the measured rounds are the steady state.
				round()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					round()
				}
			})
		}
		for _, site := range siteORBs {
			site.Shutdown()
		}
	}
}

// BenchmarkFig08TwoPhaseCommit measures the fig. 8 protocol over a sweep
// of participant counts.
func BenchmarkFig08TwoPhaseCommit(b *testing.B) {
	b.ReportAllocs()
	for _, n := range []int{1, 2, 8, 32, 128} {
		b.Run(fmt.Sprintf("participants=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			svc := activityservice.New()
			coord := twopc.NewCoordinator(svc)
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tx, err := coord.Begin("bench")
				if err != nil {
					b.Fatal(err)
				}
				for j := 0; j < n; j++ {
					if err := tx.Enlist(okResource{}); err != nil {
						b.Fatal(err)
					}
				}
				committed, err := tx.Commit(ctx)
				if err != nil || !committed {
					b.Fatalf("committed=%v err=%v", committed, err)
				}
			}
		})
	}
}

// BenchmarkFig09OpenNested measures the §4.2 structure: B commits inside
// A; A then commits (no compensation) or aborts (compensation runs).
func BenchmarkFig09OpenNested(b *testing.B) {
	b.ReportAllocs()
	for _, aCommits := range []bool{true, false} {
		name := "A-commits"
		if !aCommits {
			name = "A-aborts-compensation"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			svc := activityservice.New()
			ctx := context.Background()
			noop := func(context.Context) error { return nil }
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a, err := opennested.Begin(svc, "A", nil)
				if err != nil {
					b.Fatal(err)
				}
				bb, err := opennested.Begin(svc, "B", a)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := bb.AddCompensation(svc, "!B", noop); err != nil {
					b.Fatal(err)
				}
				if _, err := bb.Complete(ctx, true); err != nil {
					b.Fatal(err)
				}
				if _, err := a.Complete(ctx, aCommits); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig10Workflow measures the fig. 10 graph: parallel b, c then d.
func BenchmarkFig10Workflow(b *testing.B) {
	b.ReportAllocs()
	svc := activityservice.New()
	engine := workflow.New(svc)
	ok := func(context.Context) error { return nil }
	p := workflow.Process{
		Name: "a",
		Tasks: []workflow.Task{
			{Name: "b", Run: ok},
			{Name: "c", Run: ok},
			{Name: "d", DependsOn: []string{"b", "c"}, Run: ok},
		},
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := engine.Execute(ctx, p)
		if err != nil || !res.Ok {
			b.Fatalf("res=%+v err=%v", res, err)
		}
	}
}

// btpParticipant is a minimal always-successful BTP participant.
type btpParticipant struct{}

func (btpParticipant) Prepare() error { return nil }
func (btpParticipant) Confirm() error { return nil }
func (btpParticipant) Cancel() error  { return nil }

// BenchmarkFig11BTPPrepare measures the fig. 11 exchange.
func BenchmarkFig11BTPPrepare(b *testing.B) {
	b.ReportAllocs()
	for _, n := range []int{2, 8, 32} {
		b.Run(fmt.Sprintf("participants=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			svc := activityservice.New()
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				atom, err := btp.NewAtom(svc, "bench")
				if err != nil {
					b.Fatal(err)
				}
				for j := 0; j < n; j++ {
					if err := atom.Enroll(btpParticipant{}); err != nil {
						b.Fatal(err)
					}
				}
				if err := atom.Prepare(ctx); err != nil {
					b.Fatal(err)
				}
				if err := atom.Cancel(ctx); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig12BTPConfirm measures fig. 12: prepare then confirm.
func BenchmarkFig12BTPConfirm(b *testing.B) {
	b.ReportAllocs()
	svc := activityservice.New()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		atom, err := btp.NewAtom(svc, "bench")
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < 2; j++ {
			if err := atom.Enroll(btpParticipant{}); err != nil {
				b.Fatal(err)
			}
		}
		if err := atom.Prepare(ctx); err != nil {
			b.Fatal(err)
		}
		if err := atom.Confirm(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig13UserActivityDemarcation measures the fig. 13 layered API:
// begin/complete through UserActivity.
func BenchmarkFig13UserActivityDemarcation(b *testing.B) {
	b.ReportAllocs()
	svc := activityservice.New()
	ua := activityservice.NewUserActivity(svc)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		actx, _, err := ua.Begin(ctx, "bench")
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := ua.Complete(actx); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSaga measures the saga model: n steps committed, or failure at
// the end with full backward recovery.
func BenchmarkSaga(b *testing.B) {
	b.ReportAllocs()
	ok := func(context.Context) error { return nil }
	for _, mode := range []string{"commit", "compensate"} {
		b.Run(mode+"/steps=8", func(b *testing.B) {
			b.ReportAllocs()
			svc := activityservice.New()
			ctx := context.Background()
			var steps []saga.Step
			for i := 0; i < 8; i++ {
				steps = append(steps, saga.Step{
					Name: fmt.Sprintf("s%d", i), Run: ok, Compensate: ok,
				})
			}
			if mode == "compensate" {
				steps = append(steps, saga.Step{Name: "boom",
					Run: func(context.Context) error { return errors.New("fail") }})
			}
			s := saga.New(svc, "bench", steps...)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, err := s.Execute(ctx)
				if mode == "commit" && err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLRUOW measures §4.3 rehearsal + performance over k touched keys.
func BenchmarkLRUOW(b *testing.B) {
	b.ReportAllocs()
	for _, keys := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("keys=%d", keys), func(b *testing.B) {
			b.ReportAllocs()
			svc := activityservice.New()
			st := store.New()
			locks := lockmgr.New()
			for i := 0; i < keys; i++ {
				st.Put(fmt.Sprintf("k%d", i), []byte("v"))
			}
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				u := lruow.Begin(svc, "bench", st, locks, time.Second)
				for j := 0; j < keys; j++ {
					key := fmt.Sprintf("k%d", j)
					if _, _, err := u.Read(key); err != nil {
						b.Fatal(err)
					}
					if err := u.Write(key, []byte("w")); err != nil {
						b.Fatal(err)
					}
				}
				if err := u.Complete(ctx); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationRawOTSvsActivity2PC quantifies the generic framework's
// overhead: the same participants driven by the hand-coded OTS engine and
// by the activity-coordinated 2PC of §4.1.
func BenchmarkAblationRawOTSvsActivity2PC(b *testing.B) {
	b.ReportAllocs()
	const participants = 8
	b.Run("raw-ots", func(b *testing.B) {
		b.ReportAllocs()
		svc := ots.NewService()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tx := svc.Begin()
			for j := 0; j < participants; j++ {
				if err := tx.RegisterResource(okResource{}); err != nil {
					b.Fatal(err)
				}
			}
			if err := tx.Commit(false); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("activity-2pc", func(b *testing.B) {
		b.ReportAllocs()
		svc := activityservice.New()
		coord := twopc.NewCoordinator(svc)
		ctx := context.Background()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tx, err := coord.Begin("bench")
			if err != nil {
				b.Fatal(err)
			}
			for j := 0; j < participants; j++ {
				if err := tx.Enlist(okResource{}); err != nil {
					b.Fatal(err)
				}
			}
			if _, err := tx.Commit(ctx); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkDelivery compares §3.4 delivery guarantees: plain at-least-once
// (idempotence left to the action), dedup-wrapped, and transactional
// exactly-once.
func BenchmarkDelivery(b *testing.B) {
	b.ReportAllocs()
	ctx := context.Background()
	mk := func(wrap func(activityservice.Action) activityservice.Action) func(*testing.B) {
		return func(b *testing.B) {
			svc := activityservice.New()
			for i := 0; i < b.N; i++ {
				a := svc.Begin("bench")
				set := activityservice.NewSequenceSet("s", "apply")
				if err := a.RegisterSignalSet(set); err != nil {
					b.Fatal(err)
				}
				// A fresh wrapper per protocol run: the memoisation is
				// per-delivery-history, as it would be in production.
				if _, err := a.AddAction("s", wrap(noopAction())); err != nil {
					b.Fatal(err)
				}
				if _, err := a.Signal(ctx, "s"); err != nil {
					b.Fatal(err)
				}
				if _, err := a.Complete(ctx); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("at-least-once", mk(func(a activityservice.Action) activityservice.Action { return a }))
	b.Run("idempotent-dedup", mk(activityservice.Idempotent))
	txsvc := ots.NewService()
	b.Run("exactly-once-tx", mk(func(a activityservice.Action) activityservice.Action {
		return activityservice.ExactlyOnce(txsvc, a)
	}))
}

// BenchmarkPropertyGroup measures §3.3 nesting behaviours across child
// chains.
func BenchmarkPropertyGroup(b *testing.B) {
	b.ReportAllocs()
	ctx := context.Background()
	for _, vis := range []struct {
		name string
		v    activityservice.NestedVisibility
	}{
		{"shared", activityservice.VisibilityShared},
		{"copy", activityservice.VisibilityCopy},
		{"read-only", activityservice.VisibilityReadOnly},
	} {
		b.Run(vis.name+"/depth=16", func(b *testing.B) {
			b.ReportAllocs()
			svc := activityservice.New()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				root := svc.Begin("root")
				pg := activityservice.NewTupleSpace("env", vis.v, activityservice.PropagateByValue)
				for k := 0; k < 8; k++ {
					if err := pg.Set(fmt.Sprintf("key%d", k), int64(k)); err != nil {
						b.Fatal(err)
					}
				}
				if err := root.AddPropertyGroup(pg); err != nil {
					b.Fatal(err)
				}
				cur := root
				chain := []*activityservice.Activity{root}
				for d := 0; d < 16; d++ {
					child, err := cur.BeginChild(fmt.Sprintf("c%d", d))
					if err != nil {
						b.Fatal(err)
					}
					g, _ := child.PropertyGroup("env")
					if _, ok := g.Get("key0"); !ok {
						b.Fatal("property lost in child")
					}
					chain = append(chain, child)
					cur = child
				}
				for j := len(chain) - 1; j >= 0; j-- {
					if _, err := chain[j].Complete(ctx); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkRemote2PC measures the distribution cost: the fig. 8 protocol
// with participants behind the ORB, in-process vs TCP.
func BenchmarkRemote2PC(b *testing.B) {
	b.ReportAllocs()
	run := func(b *testing.B, tcp bool) {
		serverORB := orb.New()
		defer serverORB.Shutdown()
		clientORB := orb.New()
		defer clientORB.Shutdown()
		refs := make([]orb.IOR, 2)
		for i := range refs {
			refs[i] = orb.ExportAction(serverORB, resourceAction())
		}
		if tcp {
			if _, err := serverORB.Listen("127.0.0.1:0"); err != nil {
				b.Fatal(err)
			}
			for i := range refs {
				refs[i], _ = serverORB.IOR(refs[i].Key)
			}
		}
		svc := activityservice.New()
		coord := twopc.NewCoordinator(svc)
		ctx := context.Background()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tx, err := coord.Begin("bench")
			if err != nil {
				b.Fatal(err)
			}
			for _, ref := range refs {
				if err := tx.EnlistAction(orb.ImportAction(clientORB, ref)); err != nil {
					b.Fatal(err)
				}
			}
			committed, err := tx.Commit(ctx)
			if err != nil || !committed {
				b.Fatalf("committed=%v err=%v", committed, err)
			}
		}
	}
	b.Run("inproc", func(b *testing.B) { run(b, false) })
	b.Run("tcp", func(b *testing.B) { run(b, true) })
}

// resourceAction builds a remote-safe 2PC participant action.
func resourceAction() activityservice.Action {
	ra := twopc.NewResourceAction(okResource{})
	return ra
}

// BenchmarkRecoveryReplay measures §3.4 recovery: journal n activities,
// then rebuild the tree from the log.
func BenchmarkRecoveryReplay(b *testing.B) {
	b.ReportAllocs()
	for _, n := range []int{10, 100} {
		b.Run(fmt.Sprintf("activities=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			log := ots.NewMemoryLog()
			svc := activityservice.New(activityservice.WithJournal(log))
			for i := 0; i < n; i++ {
				svc.Begin(fmt.Sprintf("a%d", i))
			}
			snap, err := log.Snapshot()
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				replayLog, err := openMemory(snap)
				if err != nil {
					b.Fatal(err)
				}
				fresh := activityservice.New()
				roots, err := fresh.Recover(replayLog)
				if err != nil {
					b.Fatal(err)
				}
				if len(roots) != n {
					b.Fatalf("recovered %d roots, want %d", len(roots), n)
				}
			}
		})
	}
}

// BenchmarkOTSNestedCommit measures nested transaction cost by depth.
func BenchmarkOTSNestedCommit(b *testing.B) {
	b.ReportAllocs()
	for _, depth := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			b.ReportAllocs()
			svc := ots.NewService()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				top := svc.Begin()
				cur := top
				subs := make([]*ots.Transaction, 0, depth)
				for d := 0; d < depth; d++ {
					sub, err := cur.BeginSubtransaction()
					if err != nil {
						b.Fatal(err)
					}
					subs = append(subs, sub)
					cur = sub
				}
				if err := cur.RegisterResource(okResource{}); err != nil {
					b.Fatal(err)
				}
				for d := len(subs) - 1; d >= 0; d-- {
					if err := subs[d].Commit(false); err != nil {
						b.Fatal(err)
					}
				}
				if err := top.Commit(false); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// watchGoroutinePeak samples the process goroutine count every
// millisecond until the returned stop function is called, recording the
// peak. Shared by the saturation benchmark and chaos test.
func watchGoroutinePeak() (*atomic.Int64, func()) {
	peak := &atomic.Int64{}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			case <-time.After(time.Millisecond):
			}
			if g := int64(runtime.NumGoroutine()); g > peak.Load() {
				peak.Store(g)
			}
		}
	}()
	return peak, func() { close(stop); <-done }
}

// BenchmarkOverload measures the admission controller at saturation: a
// servant with fixed work time behind a bounded server, hammered by a
// fixed fan-in of closed-loop callers. Reported per configuration: p99
// client-observed latency across all responses (successes and sheds — the
// responsiveness a caller sees) and the peak goroutine count. Unbounded
// dispatch buys nothing at saturation but pays for it in goroutines and
// tail latency; the admission-bounded server keeps both flat by shedding
// the excess fast.
func BenchmarkOverload(b *testing.B) {
	b.ReportAllocs()
	const (
		fanIn       = 64
		servantWork = 200 * time.Microsecond
	)
	run := func(b *testing.B, opts ...orb.ORBOption) {
		node := orb.New(opts...)
		defer node.Shutdown()
		ref := node.RegisterServant("IDL:bench/Slow:1.0", orb.ServantFunc(
			func(ctx context.Context, op string, _ *cdr.Decoder) ([]byte, error) {
				select {
				case <-time.After(servantWork):
				case <-ctx.Done():
				}
				return nil, nil
			}))
		if _, err := node.Listen("127.0.0.1:0"); err != nil {
			b.Fatal(err)
		}
		ref, _ = node.IOR(ref.Key)
		client := orb.New(orb.WithHealthRegistry(orb.NewHealthRegistry()),
			orb.WithPoolSize(8), orb.WithCallTimeout(10*time.Second))
		defer client.Shutdown()

		peak, stopWatch := watchGoroutinePeak()

		// Closed loop: fanIn workers share b.N calls; every latency —
		// shed or served — lands in the percentile pool.
		var next atomic.Int64
		latencies := make([]time.Duration, b.N)
		var shed atomic.Int64
		b.ResetTimer()
		var wg sync.WaitGroup
		for w := 0; w < fanIn; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				ctx := context.Background()
				for {
					i := next.Add(1) - 1
					if i >= int64(b.N) {
						return
					}
					start := time.Now()
					_, err := client.Invoke(ctx, ref, "work", nil)
					latencies[i] = time.Since(start)
					if err != nil {
						if !orb.IsSystem(err, orb.CodeTransient) {
							b.Error(err)
							return
						}
						shed.Add(1)
					}
				}
			}()
		}
		wg.Wait()
		b.StopTimer()
		stopWatch()

		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		p99 := latencies[len(latencies)*99/100]
		b.ReportMetric(float64(p99.Nanoseconds()), "p99-ns")
		b.ReportMetric(float64(peak.Load()), "peak-goroutines")
		b.ReportMetric(float64(shed.Load())/float64(b.N)*100, "shed-%")
	}

	b.Run(fmt.Sprintf("fanin=%d/unbounded", fanIn), func(b *testing.B) {
		b.ReportAllocs()
		run(b)
	})
	for _, limit := range []int{8, 16} {
		b.Run(fmt.Sprintf("fanin=%d/maxinflight=%d", fanIn, limit), func(b *testing.B) {
			b.ReportAllocs()
			run(b,
				orb.WithMaxInflight(limit),
				orb.WithAdmissionQueue(limit, 5*time.Millisecond),
			)
		})
	}
}

// BenchmarkFailover prices the multi-profile endpoint selector against the
// PR-3 single-endpoint invoke path. "single-profile" is the baseline (a
// one-profile reference takes the historic fast path); "two-profile/steady"
// adds the full selector — affinity lookup, shared health verdicts,
// profile ranking — with a healthy primary; "two-profile/primary-down"
// shows the steady state after a failover: the dead profile's shared
// health verdict routes every call straight to the backup, with p50 and
// p99 reported so the selector's tail is visible too. The redesign's
// budget: steady-state selector overhead within 5% of the baseline.
func BenchmarkFailover(b *testing.B) {
	b.ReportAllocs()
	ctx := context.Background()
	startNode := func(b *testing.B) (*orb.ORB, string) {
		b.Helper()
		node := orb.New()
		node.RegisterServantWithKey("bench-obj", "IDL:bench/Echo:1.0", orb.ServantFunc(
			func(context.Context, string, *cdr.Decoder) ([]byte, error) {
				return nil, nil
			}))
		ep, err := node.Listen("127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		return node, ep
	}
	// deadBenchEndpoint reserves a port with nothing listening on it.
	deadBenchEndpoint := func(b *testing.B) string {
		b.Helper()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		addr := ln.Addr().String()
		ln.Close()
		return "tcp:" + addr
	}
	run := func(b *testing.B, ref orb.IOR) {
		client := orb.New(
			orb.WithHealthRegistry(orb.NewHealthRegistry()),
			// Keep a dead profile's down window open across the whole run,
			// so the bench measures the selector's steady state rather
			// than periodic re-probes.
			orb.WithReconnectBackoff(time.Minute, time.Minute),
		)
		defer client.Shutdown()
		// Warm: establish connections, health verdicts and affinity.
		if _, err := client.Invoke(ctx, ref, "ping", nil); err != nil {
			b.Fatal(err)
		}
		latencies := make([]time.Duration, b.N)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			start := time.Now()
			if _, err := client.Invoke(ctx, ref, "ping", nil); err != nil {
				b.Fatal(err)
			}
			latencies[i] = time.Since(start)
		}
		b.StopTimer()
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		b.ReportMetric(float64(latencies[len(latencies)/2].Nanoseconds()), "p50-ns")
		b.ReportMetric(float64(latencies[len(latencies)*99/100].Nanoseconds()), "p99-ns")
	}

	b.Run("single-profile", func(b *testing.B) {
		b.ReportAllocs()
		node, ep := startNode(b)
		defer node.Shutdown()
		run(b, orb.NewIOR("IDL:bench/Echo:1.0", "bench-obj", ep))
	})
	b.Run("two-profile/steady", func(b *testing.B) {
		b.ReportAllocs()
		node, ep := startNode(b)
		defer node.Shutdown()
		backupNode, backupEp := startNode(b)
		defer backupNode.Shutdown()
		run(b, orb.NewIOR("IDL:bench/Echo:1.0", "bench-obj", ep, backupEp))
	})
	b.Run("two-profile/primary-down", func(b *testing.B) {
		b.ReportAllocs()
		node, ep := startNode(b)
		defer node.Shutdown()
		run(b, orb.NewIOR("IDL:bench/Echo:1.0", "bench-obj", deadBenchEndpoint(b), ep))
	})
}
