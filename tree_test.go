// Differential and chaos tests for tree-structured relay delivery: the
// relay fan-out must be observationally identical to flat delivery —
// byte-identical collation, identical traces, exactly-once counters on
// pure broadcasts — and an interior relay dying mid-round must be
// re-adopted by its parent without changing a 2PC decision or delivering
// a signal's effect more than once.
package activityservice_test

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/extendedtx/activityservice"
	"github.com/extendedtx/activityservice/hls/twopc"
	"github.com/extendedtx/activityservice/internal/cdr"
	"github.com/extendedtx/activityservice/orb"
)

// scriptSet is a SignalSet broadcasting a fixed script of signals (with
// payloads, unlike SequenceSet) and recording every response in feed
// order. When veto is non-empty, a response with that outcome name
// requests an early advance — the speculative short-circuit path.
type scriptSet struct {
	activityservice.BaseSet

	mu        sync.Mutex
	signals   []activityservice.Signal
	idx       int
	responses []activityservice.Outcome
	veto      string
}

func newScriptSet(name string, signals []activityservice.Signal, veto string) *scriptSet {
	return &scriptSet{BaseSet: activityservice.NewBaseSet(name), signals: signals, veto: veto}
}

// GetSignal implements SignalSet.
func (s *scriptSet) GetSignal() (activityservice.Signal, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.idx >= len(s.signals) {
		return activityservice.Signal{}, false, activityservice.ErrExhausted
	}
	sig := s.signals[s.idx]
	s.idx++
	return sig, s.idx == len(s.signals), nil
}

// SetResponse implements SignalSet.
func (s *scriptSet) SetResponse(resp activityservice.Outcome, deliveryErr error) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if deliveryErr != nil {
		resp = activityservice.Outcome{Name: "delivery-error", Data: deliveryErr.Error()}
	}
	s.responses = append(s.responses, resp)
	return s.veto != "" && resp.Name == s.veto, nil
}

// GetOutcome implements SignalSet.
func (s *scriptSet) GetOutcome() (activityservice.Outcome, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return activityservice.Outcome{Name: "scripted", Data: int64(len(s.responses))}, nil
}

// Responses returns the feed-order response log.
func (s *scriptSet) Responses() []activityservice.Outcome {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]activityservice.Outcome(nil), s.responses...)
}

// diffFixture is the differential harness: fanout participants spread
// over in-process site ORBs (each hosting the well-known relay servant),
// imported into one client ORB, with per-participant per-signal delivery
// counters.
type diffFixture struct {
	actions []activityservice.Action
	counts  []*sync.Map // participant -> signal name -> *atomic.Int32
}

func newDiffFixture(t *testing.T, fanout, sites int) *diffFixture {
	t.Helper()
	siteORBs := make([]*orb.ORB, sites)
	for i := range siteORBs {
		siteORBs[i] = orb.New()
		t.Cleanup(siteORBs[i].Shutdown)
		orb.ServeRelay(siteORBs[i])
	}
	client := orb.New()
	t.Cleanup(client.Shutdown)

	fx := &diffFixture{
		actions: make([]activityservice.Action, fanout),
		counts:  make([]*sync.Map, fanout),
	}
	for i := 0; i < fanout; i++ {
		i := i
		fx.counts[i] = &sync.Map{}
		site := siteORBs[i%sites]
		ref := orb.ExportAction(site, activityservice.ActionFunc(
			func(_ context.Context, sig activityservice.Signal) (activityservice.Outcome, error) {
				c, _ := fx.counts[i].LoadOrStore(sig.Name, new(atomic.Int32))
				c.(*atomic.Int32).Add(1)
				// A participant- and signal-specific payload: any collation
				// divergence between delivery modes becomes a byte diff.
				return activityservice.Outcome{
					Name: "ack:" + sig.Name,
					Data: int64(i)<<16 | int64(len(sig.Name)),
				}, nil
			}))
		ref, _ = site.IOR(ref.Key)
		fx.actions[i] = orb.ImportAction(client, ref)
	}
	return fx
}

// snapshot returns each participant's delivery count per script signal and
// clears all counters for the next run.
func (fx *diffFixture) snapshot(signals []activityservice.Signal) [][]int32 {
	out := make([][]int32, len(signals))
	for s, sig := range signals {
		out[s] = make([]int32, len(fx.counts))
		for i, m := range fx.counts {
			if c, ok := m.Load(sig.Name); ok {
				out[s][i] = c.(*atomic.Int32).Load()
			}
		}
	}
	for i := range fx.counts {
		fx.counts[i] = &sync.Map{}
	}
	return out
}

// runScript drives one activity over the fixture's participants under the
// given delivery policy and returns the encoded response log (collation
// bytes) and the recorded trace.
func (fx *diffFixture) runScript(t *testing.T, policy activityservice.DeliveryPolicy, signals []activityservice.Signal, veto string) ([]byte, []string) {
	t.Helper()
	rec := activityservice.NewTraceRecorder()
	svc := activityservice.New(activityservice.WithDelivery(policy), activityservice.WithTrace(rec))
	a := svc.Begin("differential")
	set := newScriptSet("script", signals, veto)
	if err := a.RegisterSignalSet(set); err != nil {
		t.Fatal(err)
	}
	for i, action := range fx.actions {
		if _, err := a.AddNamedAction("script", fmt.Sprintf("p%04d", i), action); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := a.Signal(context.Background(), "script"); err != nil {
		t.Fatal(err)
	}
	enc := cdr.NewEncoder(1024)
	for _, o := range set.Responses() {
		if err := o.Encode(enc); err != nil {
			t.Fatal(err)
		}
	}
	return append([]byte(nil), enc.Bytes()...), rec.Sequence()
}

// randomScript builds a deterministic pseudo-random signal script: names
// from a small alphabet, payloads mixing every cdr-any shape.
func randomScript(rng *rand.Rand, setName string, n int) []activityservice.Signal {
	alphabet := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	signals := make([]activityservice.Signal, n)
	for i := range signals {
		name := alphabet[rng.Intn(len(alphabet))] + fmt.Sprintf("-%d", i)
		var data any
		switch rng.Intn(3) {
		case 0:
			data = rng.Int63()
		case 1:
			data = fmt.Sprintf("payload-%d", rng.Int63())
		default:
			data = []any{rng.Int63(), "nested"}
		}
		signals[i] = activityservice.Signal{Name: name, SetName: setName, Data: data}
	}
	return signals
}

// TestTreeDifferentialMatchesSerial is the differential property test: for
// randomized broadcast scripts at fanout 256 across branching factors
// 2..8, tree delivery must produce byte-identical collation, an identical
// trace, and exactly-once delivery to every participant — indistinguishable
// from serial delivery except in how the signals traveled.
func TestTreeDifferentialMatchesSerial(t *testing.T) {
	const fanout = 256
	fx := newDiffFixture(t, fanout, 4)

	for _, branching := range []int{2, 3, 8} {
		branching := branching
		t.Run(fmt.Sprintf("branching=%d", branching), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(1000 + branching)))
			for script := 0; script < 2; script++ {
				signals := randomScript(rng, "script", 2+rng.Intn(2))

				serialBytes, serialTrace := fx.runScript(t, activityservice.DeliveryPolicy{Mode: activityservice.DeliverSerial}, signals, "")
				serialCounts := fx.snapshot(signals)

				treeBytes, treeTrace := fx.runScript(t, activityservice.Tree(branching), signals, "")
				treeCounts := fx.snapshot(signals)
				for i, sig := range signals {
					for p := 0; p < fanout; p++ {
						if serialCounts[i][p] != 1 {
							t.Fatalf("script %d: serial delivered %q to participant %d %d times, want 1", script, sig.Name, p, serialCounts[i][p])
						}
						if treeCounts[i][p] != 1 {
							t.Fatalf("script %d: tree delivered %q to participant %d %d times, want exactly once", script, sig.Name, p, treeCounts[i][p])
						}
					}
				}
				if !bytes.Equal(serialBytes, treeBytes) {
					t.Fatalf("script %d: tree collation diverged from serial (%d vs %d bytes)", script, len(treeBytes), len(serialBytes))
				}
				if len(serialTrace) != len(treeTrace) {
					t.Fatalf("script %d: trace length %d (tree) vs %d (serial)", script, len(treeTrace), len(serialTrace))
				}
				for i := range serialTrace {
					if serialTrace[i] != treeTrace[i] {
						t.Fatalf("script %d: trace diverged at event %d: %q (tree) vs %q (serial)", script, i, treeTrace[i], serialTrace[i])
					}
				}
			}
		})
	}
}

// TestTreeDifferentialAdvanceShortCircuit covers the speculative path: a
// mid-fanout participant vetoes the first broadcast, forcing an early
// advance. Tree delivery is speculative — batches already relayed cannot
// be recalled — but the fed responses, the collation and the trace must
// still match serial delivery exactly. (Delivery counters are not
// compared: speculative modes may legitimately deliver to participants
// whose responses are then discarded.)
func TestTreeDifferentialAdvanceShortCircuit(t *testing.T) {
	const (
		fanout  = 256
		vetoIdx = 100
	)
	siteORBs := make([]*orb.ORB, 4)
	for i := range siteORBs {
		siteORBs[i] = orb.New()
		t.Cleanup(siteORBs[i].Shutdown)
		orb.ServeRelay(siteORBs[i])
	}
	client := orb.New()
	t.Cleanup(client.Shutdown)
	actions := make([]activityservice.Action, fanout)
	for i := 0; i < fanout; i++ {
		i := i
		site := siteORBs[i%4]
		ref := orb.ExportAction(site, activityservice.ActionFunc(
			func(_ context.Context, sig activityservice.Signal) (activityservice.Outcome, error) {
				if i == vetoIdx && sig.Name == "poll" {
					return activityservice.Outcome{Name: "veto", Data: int64(i)}, nil
				}
				return activityservice.Outcome{Name: "ack:" + sig.Name, Data: int64(i)}, nil
			}))
		ref, _ = site.IOR(ref.Key)
		actions[i] = orb.ImportAction(client, ref)
	}

	signals := []activityservice.Signal{
		{Name: "poll", SetName: "script", Data: int64(1)},
		{Name: "cancel", SetName: "script", Data: int64(2)},
	}
	run := func(policy activityservice.DeliveryPolicy) ([]byte, []string) {
		rec := activityservice.NewTraceRecorder()
		svc := activityservice.New(activityservice.WithDelivery(policy), activityservice.WithTrace(rec))
		a := svc.Begin("advance")
		set := newScriptSet("script", signals, "veto")
		if err := a.RegisterSignalSet(set); err != nil {
			t.Fatal(err)
		}
		for i, action := range actions {
			if _, err := a.AddNamedAction("script", fmt.Sprintf("p%04d", i), action); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := a.Signal(context.Background(), "script"); err != nil {
			t.Fatal(err)
		}
		enc := cdr.NewEncoder(1024)
		for _, o := range set.Responses() {
			if err := o.Encode(enc); err != nil {
				t.Fatal(err)
			}
		}
		return append([]byte(nil), enc.Bytes()...), rec.Sequence()
	}

	serialBytes, serialTrace := run(activityservice.DeliveryPolicy{Mode: activityservice.DeliverSerial})
	treeBytes, treeTrace := run(activityservice.Tree(4))
	if !bytes.Equal(serialBytes, treeBytes) {
		t.Fatalf("advance collation diverged: %d bytes (tree) vs %d (serial)", len(treeBytes), len(serialBytes))
	}
	if len(serialTrace) != len(treeTrace) {
		t.Fatalf("advance trace length %d (tree) vs %d (serial)", len(treeTrace), len(serialTrace))
	}
	for i := range serialTrace {
		if serialTrace[i] != treeTrace[i] {
			t.Fatalf("advance trace diverged at event %d: %q (tree) vs %q (serial)", i, treeTrace[i], serialTrace[i])
		}
	}
}

// relayChaosFixture spreads one 2PC participant per site over real TCP,
// every site sharing one chaos transport for its outbound (relay-to-relay
// and relay-to-member) calls, while the coordinator's client ORB dials
// through a clean transport. Any relay_deliver crossing the chaos
// transport is therefore an interior forward — exactly the traffic an
// interior-relay-death scenario must disturb.
type relayChaosFixture struct {
	resources []*chaosResource
	refs      []orb.IOR
	client    *orb.ORB
	chaos     *orb.ChaosTransport
}

func newRelayChaosFixture(t *testing.T, sites int, wrap func(activityservice.Action) activityservice.Action) *relayChaosFixture {
	t.Helper()
	fx := &relayChaosFixture{chaos: orb.NewChaosTransport(nil)}
	fx.client = orb.New(orb.WithHealthRegistry(orb.NewHealthRegistry()),
		orb.WithCallTimeout(2*time.Second))
	t.Cleanup(fx.client.Shutdown)

	refs := make([]orb.IOR, sites)
	for i := 0; i < sites; i++ {
		site := orb.New(orb.WithHealthRegistry(orb.NewHealthRegistry()),
			orb.WithTransport(fx.chaos), orb.WithCallTimeout(2*time.Second))
		t.Cleanup(site.Shutdown)
		if _, err := site.Listen("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		orb.ServeRelay(site)
		r := &chaosResource{}
		fx.resources = append(fx.resources, r)
		action := activityservice.Action(twopc.NewResourceAction(r))
		if wrap != nil {
			action = wrap(action)
		}
		ref := orb.ExportAction(site, action)
		refs[i], _ = site.IOR(ref.Key)
	}
	fx.refs = refs
	return fx
}

// commitTree runs one 2PC over every participant with tree delivery.
func (fx *relayChaosFixture) commitTree(t *testing.T, branching int) bool {
	t.Helper()
	svc := activityservice.New(activityservice.WithRetryPolicy(
		activityservice.RetryPolicy{Attempts: 3, Backoff: 5 * time.Millisecond}))
	coord := twopc.NewCoordinator(svc, twopc.WithDelivery(activityservice.Tree(branching)))
	tx, err := coord.Begin("relay-chaos")
	if err != nil {
		t.Fatal(err)
	}
	for _, ref := range fx.refs {
		if err := tx.EnlistAction(orb.ImportAction(fx.client, ref)); err != nil {
			t.Fatal(err)
		}
	}
	committed, err := tx.Commit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return committed
}

// TestRelayChaosInteriorDeathReadopts kills an interior relay mid-prepare:
// the first relay-to-relay forward is reset before it is sent, so the
// parent relay re-adopts the orphaned span and delivers those members
// directly. Documented behaviour: the 2PC decision converges — commit —
// and every participant prepares and commits exactly once (the relay died
// before delivering anything, so re-adoption cannot duplicate).
func TestRelayChaosInteriorDeathReadopts(t *testing.T) {
	fx := newRelayChaosFixture(t, 8, nil)
	fault := fx.chaos.Inject(orb.ChaosRule{
		Op: "relay_deliver", Stage: orb.StageRequest, Reset: true, Count: 1,
	})

	if !fx.commitTree(t, 2) {
		t.Fatal("2PC rolled back; an interior relay death must not change the decision")
	}
	if fault.Hits() != 1 {
		t.Fatalf("interior forward reset fired %d times, want exactly 1", fault.Hits())
	}
	for i, r := range fx.resources {
		if got := r.prepares.Load(); got != 1 {
			t.Errorf("participant %d prepared %d times, want exactly 1", i, got)
		}
		if got := r.commits.Load(); got != 1 {
			t.Errorf("participant %d committed %d times, want exactly 1", i, got)
		}
		if got := r.rollbacks.Load(); got != 0 {
			t.Errorf("participant %d rolled back %d times, want 0", i, got)
		}
	}
}

// TestRelayChaosLostReplyRedeliversIdempotently kills the interior relay
// after it delivered its span but before its aggregated reply reaches the
// parent: the parent cannot tell delivery from death, re-adopts the span
// and redelivers. Documented behaviour: outer delivery is at-least-once,
// the idempotent wrapper absorbs the duplicates, and the protocol effect —
// the resource's prepare/commit — still happens exactly once while the
// 2PC converges on commit.
func TestRelayChaosLostReplyRedeliversIdempotently(t *testing.T) {
	fx := newRelayChaosFixture(t, 8, activityservice.Idempotent)
	fault := fx.chaos.Inject(orb.ChaosRule{
		Op: "relay_deliver", Stage: orb.StageReply, Reset: true, Count: 1,
	})

	if !fx.commitTree(t, 2) {
		t.Fatal("2PC rolled back; a lost relay reply must not change the decision")
	}
	if fault.Hits() != 1 {
		t.Fatalf("reply-stage reset fired %d times, want exactly 1", fault.Hits())
	}
	for i, r := range fx.resources {
		if got := r.prepares.Load(); got != 1 {
			t.Errorf("participant %d prepared %d times, want exactly 1 (idempotent redelivery)", i, got)
		}
		if got := r.commits.Load(); got != 1 {
			t.Errorf("participant %d committed %d times, want exactly 1", i, got)
		}
		if got := r.rollbacks.Load(); got != 0 {
			t.Errorf("participant %d rolled back %d times, want 0", i, got)
		}
	}
}
